// receiver.h — ALF receiving endpoint: the two-stage receive path of §6.
//
// Stage 1 (per transmission unit, control only): verify the fragment
// header, demux by session and ADU id, place the payload at its offset in
// the ADU's reassembly buffer. The fragment tells us everything — no
// connection byte-stream state, no ordering requirement.
//
// Stage 2 (per complete ADU, manipulation): the moment an ADU's last byte
// arrives — regardless of the fate of earlier ADUs — run the integrated
// manipulation pass (decrypt + integrity verify, fused when the session
// selects ProcessMode::kIntegrated) and hand the ADU to the application.
// Complete ADUs are therefore delivered out of order; the presentation /
// application pipeline never stalls behind a hole the way the in-order
// stream transport does.
//
// Loss is reported in application terms (§5): the on_adu_lost callback
// receives the ADU's application name whenever any fragment of it was seen.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "alf/adu.h"
#include "alf/session.h"
#include "alf/wire.h"
#include "ilp/pipeline.h"
#include "netsim/net_path.h"
#include "obs/cost.h"
#include "util/event_loop.h"
#include "util/rng.h"

namespace ngp::obs {
class MetricSink;
class MetricsRegistry;
class TraceRecorder;
class FlightRecorder;
}  // namespace ngp::obs

namespace ngp::engine {
class Engine;
}  // namespace ngp::engine

namespace ngp::presentation {
struct PresentationPlan;
}  // namespace ngp::presentation

namespace ngp::alf {

struct ReceiverStats {
  std::uint64_t fragments_received = 0;
  std::uint64_t fragments_corrupt = 0;     ///< header damage (decode drop)
  std::uint64_t fragments_duplicate = 0;   ///< fully redundant bytes
  std::uint64_t fragments_for_done_adus = 0;
  std::uint64_t fragments_fec_reconstructed = 0;  ///< recovered via parity
  std::uint64_t adus_delivered = 0;
  std::uint64_t adus_delivered_out_of_order = 0;  ///< earlier id still open
  std::uint64_t adus_checksum_failed = 0;
  std::uint64_t adus_abandoned = 0;        ///< gave up after max_nacks
  std::uint64_t nacks_sent = 0;
  std::uint64_t nack_ids_sent = 0;
  std::uint64_t progress_sent = 0;
  std::uint64_t payload_bytes_delivered = 0;
  std::size_t reassembly_bytes_peak = 0;

  // Hardened-path counters (hostile substrates; see SessionConfig bounds).
  std::uint64_t fragments_oversized = 0;     ///< adu_len > max_adu_len (also corrupt)
  std::uint64_t fragments_out_of_window = 0; ///< adu_id beyond window (also corrupt)
  std::uint64_t fragments_dropped_mem = 0;   ///< no reassembly room even after eviction
  std::uint64_t reassembly_evictions = 0;    ///< incomplete ADUs evicted for space
  std::uint64_t watchdog_fired = 0;          ///< stall watchdog abandoned the session
  std::uint64_t fragments_stale_epoch = 0;   ///< stamped with another epoch
  std::uint64_t adus_shed = 0;               ///< dropped by the overload policy

  /// ADUs whose stage-2 manipulation ran as an engine job (0 when inline).
  std::uint64_t adus_engine_offloaded = 0;

  // Zero-copy datapath counters (rx pool attached; DESIGN.md §12).
  std::uint64_t fragments_zero_copy = 0;    ///< placed by reference (no copy)
  std::uint64_t fragments_pool_copied = 0;  ///< placed by copy into a pool seg
  std::uint64_t adus_chain_delivered = 0;   ///< handed up as an AduChain

  /// ADUs whose presentation decode was fused into the stage-2 pass (a
  /// compiled plan was attached and its wire stage rode the verify kernel).
  std::uint64_t adus_presentation_fused = 0;
};

/// What a receiver knows about a session's closed ADUs, extracted after a
/// failure and replayed into the restarted incarnation (DESIGN.md §10):
/// delivery state survives a supervised restart, so the sender retransmits
/// only what never completed.
struct ResumeSummary {
  std::uint32_t closed_prefix = 0;          ///< ids 1..prefix all closed
  std::vector<std::uint32_t> closed_above;  ///< closed ids above the prefix
  std::uint32_t delivered = 0;
  std::uint32_t abandoned = 0;
  std::uint32_t highest_seen = 0;
  std::uint32_t expected_total = 0;         ///< 0 if DONE was never seen
};

/// Ranks an ADU for the overload shedding policy: lower = shed first.
/// Defaults to 0 for everything (shedding then falls back to least-progress
/// / youngest-id order).
using PriorityFn = std::function<int(const AduName&)>;

/// ALF receiving endpoint for one association.
///
/// Timer lifecycle: maintenance timers (NACK scan, progress reports) arm on
/// first activity and stand down when there is nothing outstanding. A
/// session that has received data but not yet seen the sender's DONE keeps
/// a progress heartbeat running — that heartbeat is what lets the sender
/// repair a lost DONE — so a deliberately open long-lived session ticks at
/// progress_interval until it completes.
class AlfReceiver {
 public:
  /// `data_in` delivers fragments (handler registered here);
  /// `feedback_out` carries NACK/PROGRESS back to the sender.
  AlfReceiver(EventLoop& loop, NetPath& data_in, NetPath& feedback_out,
              SessionConfig config);

  /// Demux-fed variant (sessiond): `data_in` may be null, in which case no
  /// ingress handler is registered and frames arrive only through
  /// handle_frame() — the receiver shares its ingress path with every
  /// other session behind a Dispatcher instead of owning one.
  AlfReceiver(EventLoop& loop, NetPath* data_in, NetPath& feedback_out,
              SessionConfig config);

  /// Public demux entry: processes one raw ingress frame exactly as the
  /// path handler would (validation included — the frame is still
  /// untrusted input). This is what a sessiond Dispatcher routes into
  /// after peeking the flow id.
  void handle_frame(ConstBytes frame) { on_frame(frame); }

  AlfReceiver(const AlfReceiver&) = delete;
  AlfReceiver& operator=(const AlfReceiver&) = delete;

  /// Settles any manipulation jobs still in flight on the engine (their
  /// completions hold callbacks into this object) before teardown, and
  /// cancels every pending timer — destroying a receiver mid-session
  /// (a supervisor restart) must leave no event into freed memory.
  ~AlfReceiver();

  /// Optional execution-engine hookup (the §4/§5 control/manipulation
  /// split): frames keep being validated and reassembled on the control
  /// path — cheap — while each complete ADU's stage-2 pipeline is
  /// offloaded as an engine::ManipulationJob and harvested back on the
  /// control thread `harvest_delay` of simulated time later. ADUs then
  /// complete in ANY order (more so than inline), which ALF explicitly
  /// permits: delivery is by ADU name. Null reverts to inline execution
  /// (the default, bit-identical to the classic path). Set before traffic
  /// arrives; the engine must outlive this receiver.
  void set_engine(engine::Engine* eng, SimDuration harvest_delay = 0) noexcept {
    eng_ = eng;
    engine_harvest_delay_ = harvest_delay;
  }

  /// Complete-ADU callback; invoked the moment each ADU completes, in
  /// arrival-completion order (NOT id order — that is the point).
  void set_on_adu(std::function<void(Adu&&)> fn) { on_adu_ = std::move(fn); }

  /// Opts this receiver into the zero-copy datapath (DESIGN.md §12). With a
  /// pool attached — normally the SAME pool the ingress Link writes into
  /// (Link::set_rx_pool) — fragments of Internet-checksummed ADUs are
  /// reassembled as scatter-gather chains of refcounted pool slices: a
  /// payload that arrives inside a pool segment is linked by reference
  /// (no copy, no ledger charge); anything else is copied ONCE into a pool
  /// segment. Stage 2 then runs over the gather list and delivery hands up
  /// the chain itself (set_on_adu_chain) or flattens once as a bridge.
  /// Strictly opt-in: with no pool the receiver is bit-identical to the
  /// flat path. Set before traffic; the pool must outlive the receiver and
  /// every chain it delivered.
  void set_rx_pool(buf::BufferPool* pool) noexcept { rx_pool_ = pool; }

  /// Fuses a compiled presentation plan (DESIGN.md §13) into stage 2: ADUs
  /// whose wire syntax matches the plan's are delivered already in HOST
  /// order — the plan's wire_stage() (LWTS identity, XDR byteswap32) runs
  /// inside the same decrypt+verify pass, inline or as an engine chain
  /// job, so no separate decode pass remains. The application finishes
  /// with presentation::plan_decode_host_order on the delivered payload.
  /// Contract: every ADU of the matching syntax on this session must carry
  /// a record of the plan's schema (sessions mixing record and plain-octet
  /// ADUs of one syntax must not attach a plan). Plans whose wire_stage()
  /// is kNone attach harmlessly (nothing fuses). Null detaches.
  void set_presentation(std::shared_ptr<const presentation::PresentationPlan> plan) {
    present_plan_ = std::move(plan);
  }

  /// Chain-delivery callback for pooled ADUs. When set, pooled ADUs bypass
  /// the flatten bridge and arrive as AduChain — at most one copy remains
  /// on the whole path (the link's copy "from the net" into the pool), and
  /// the final placement is the application's to perform from the gather
  /// list. Non-pooled ADUs still arrive via set_on_adu.
  void set_on_adu_chain(std::function<void(AduChain&&)> fn) {
    on_adu_chain_ = std::move(fn);
  }

  /// Loss report in application terms. `name_known` is false only when no
  /// fragment of the ADU ever arrived (then only the recovery id exists).
  void set_on_adu_lost(
      std::function<void(std::uint32_t adu_id, const AduName& name, bool name_known)> fn) {
    on_adu_lost_ = std::move(fn);
  }

  /// Fires once: every ADU up to the sender's DONE total has either been
  /// delivered or abandoned.
  void set_on_complete(std::function<void()> fn) { on_complete_ = std::move(fn); }

  /// Fires once if the stall watchdog abandons the session (no progress for
  /// SessionConfig::stall_timeout): the application degrades gracefully
  /// instead of hanging on a dead or hostile substrate.
  void set_on_session_failed(std::function<void()> fn) {
    on_session_failed_ = std::move(fn);
  }

  /// Overload-shedding rank (see PriorityFn); unset = all equal.
  void set_priority(PriorityFn fn) { priority_ = std::move(fn); }

  /// Snapshot of the closed-ADU books for a RESUME frame / a restarted
  /// incarnation. Valid even after fail_session(): the closed bookkeeping
  /// deliberately survives failure so recovery can build on it.
  ResumeSummary resume_summary() const;

  /// Replays a predecessor's summary into this (fresh, pre-traffic)
  /// incarnation: delivered/abandoned ADUs stay closed, the DONE total is
  /// remembered, and completion fires immediately if nothing is left. No
  /// timers are armed — a restored receiver waits for new-epoch traffic
  /// (the NACK budget must not burn while the sender has not resumed).
  void restore(const ResumeSummary& s);

  bool complete() const noexcept { return complete_fired_; }
  bool failed() const noexcept { return failed_; }
  std::uint32_t adus_delivered() const noexcept { return delivered_count_; }
  const ReceiverStats& stats() const noexcept { return stats_; }

  /// §4 cost ledger for stage-2 manipulation (decrypt + verify). Under
  /// ProcessMode::kIntegrated this reports ~1 pass per ADU; kLayered
  /// reports one pass per manipulation — the fused-vs-layered claim,
  /// measured on live traffic.
  const obs::CostAccount& manipulation_cost() const noexcept { return manip_cost_; }
  /// Stage-1 cost ledger: fragment placement copies and FEC reconstruction
  /// passes (the "moving to/from the net" traffic, §3). Kept separate from
  /// the stage-2 manipulation ledger so the §4 fused-vs-layered ratios stay
  /// comparable across configurations; emitted as "reassembly".
  const obs::CostAccount& reassembly_cost() const noexcept { return reassembly_cost_; }
  /// Writes all counters (stats + cost) into one snapshot source.
  void emit_metrics(obs::MetricSink& sink) const;
  /// Registers emit_metrics under `prefix` (e.g. "alf.rx"). The receiver
  /// must outlive the registry or be removed first.
  void register_metrics(obs::MetricsRegistry& reg, std::string prefix) const;
  /// Attaches a span trace recorder (null = untraced).
  void set_trace(obs::TraceRecorder* trace) noexcept { trace_ = trace; }
  /// Attaches the per-ADU flight recorder on a new "alf.rx" track:
  /// fragment-placed / complete / manipulation / engine-submit / harvest /
  /// deliver / abandon events (null = untraced).
  void set_flight(obs::FlightRecorder* flight);

 private:
  struct Reassembly {
    AduName name;
    TransferSyntax syntax = TransferSyntax::kRaw;
    std::uint8_t flags = 0;
    ChecksumKind checksum_kind = ChecksumKind::kInternet;
    std::uint8_t fec_k = 0;
    std::uint32_t adu_len = 0;
    std::uint32_t checksum = 0;
    ByteBuffer buf;  ///< flat reassembly target (unused when pooled)
    /// Zero-copy reassembly: disjoint pool slices keyed by ADU offset.
    /// Complete coverage in key order IS the ADU; destroying the map (shed,
    /// evict, checksum failure) releases every segment reference.
    std::map<std::uint32_t, buf::Slice> frags;
    bool pooled = false;  ///< this ADU reassembles as slices, not into buf
    std::map<std::uint32_t, std::uint32_t> ranges;  ///< received [start,end)
    std::map<std::uint32_t, ByteBuffer> parity;     ///< group start -> block
    std::size_t bytes_received = 0;
    std::size_t frag_capacity = 0;  ///< inferred from the first fragment
    std::size_t charged_bytes = 0;  ///< counted against reassembly_bytes_limit
    int nacks = 0;
    SimTime next_nack_at = 0;  ///< exponential backoff per ADU
  };

  /// NACK pacing for ADUs no fragment of which has been seen.
  struct NackState {
    int count = 0;
    SimTime next_at = 0;
  };

  void on_frame(ConstBytes frame);
  void on_data(const DataFragment& f);
  void on_done(const DoneMessage& d);
  /// Merges [start,end) into r.ranges and updates coverage. Returns true
  /// if any byte was new.
  bool merge_range(Reassembly& r, std::uint32_t start, std::uint32_t end);
  /// FEC: reconstructs any group that is one fragment short of complete.
  /// Returns true if the ADU became complete as a result.
  bool try_fec_reconstruct(std::uint32_t adu_id, Reassembly& r);
  bool range_present(const Reassembly& r, std::uint32_t start,
                     std::uint32_t end) const;
  void complete_adu(std::uint32_t adu_id, Reassembly& r);
  /// Builds the stage-2 pipeline description for one complete ADU; the one
  /// recipe both the inline path and engine workers execute, so the §4
  /// charges are identical by construction.
  ManipulationPlan make_plan(std::uint32_t adu_id, const Reassembly& r) const;
  /// Stage 2: fused or layered decrypt+verify. True if intact.
  bool verify_and_decrypt(std::uint32_t adu_id, Reassembly& r);
  /// Places one data fragment of a pooled ADU: every not-yet-covered gap of
  /// [start,end) becomes a slice — by reference when the payload sits in
  /// the published ingress segment, by one pool copy otherwise.
  void place_pooled(Reassembly& r, ConstBytes payload, std::uint32_t start,
                    std::uint32_t end);
  /// Reads [start,start+len) of a pooled ADU. `out` aliases a slice when
  /// the range is contiguous in one, else the bytes are gathered into
  /// `scratch`. False if any byte is missing.
  bool read_pooled(const Reassembly& r, std::uint32_t start, std::size_t len,
                   MutableBytes scratch, ConstBytes& out) const;
  /// Links a pooled ADU's slices (complete, disjoint, in offset order) into
  /// one chain and clears the slice map.
  buf::BufChain build_chain(Reassembly& r);
  /// Stage 2 over the gather list (pooled ADUs): the checksum pass reads
  /// the chain in place — no flat staging buffer exists to store into.
  bool verify_and_decrypt_chain(std::uint32_t adu_id, const Reassembly& r,
                                buf::BufChain& chain);
  /// deliver_payload's zero-copy twin: hands up the chain (or flattens
  /// once when only a flat consumer is registered).
  void deliver_chain(std::uint32_t adu_id, const AduName& name,
                     TransferSyntax syntax, buf::BufChain&& chain);
  /// Control-thread continuation of an offloaded chain job.
  void on_manip_done_chain(std::uint32_t adu_id, bool intact,
                           buf::BufChain&& chain, const obs::CostAccount& cost);
  /// Flight note for a pool release the receiver itself decided on
  /// (flatten bridge, checksum-fail discard, shed/evict of a pooled ADU).
  void note_recycle(std::uint32_t adu_id, std::size_t bytes);
  /// Engine path for complete_adu: moves the payload into a job, releases
  /// the reassembly charge, and arms the harvest pump.
  void offload_adu(std::uint32_t adu_id, Reassembly& r);
  /// Control-thread continuation of an offloaded ADU (runs inside
  /// engine_pump's drain, i.e. at a deterministic simulated time).
  void on_manip_done(std::uint32_t adu_id, bool intact, ByteBuffer&& payload,
                     const obs::CostAccount& cost);
  void arm_engine_pump();
  void engine_pump();
  void deliver(std::uint32_t adu_id, Reassembly&& r);
  /// Shared tail of deliver(): closes the id and hands the ADU up.
  void deliver_payload(std::uint32_t adu_id, const AduName& name,
                       TransferSyntax syntax, ByteBuffer&& payload);
  void abandon(std::uint32_t adu_id, const Reassembly* r);
  /// Overload policy (DESIGN.md §10.3): while reassembly memory sits above
  /// shed_highwater, drop lowest-priority incomplete ADUs (never
  /// `protect_id`) down to the low-water mark. Shed ADUs are closed and
  /// reported via on_adu_lost — the application copes in its own terms.
  void shed_for_overload(std::uint32_t protect_id);
  /// Sheds one victim for engine backlog pressure. Returns false if no
  /// incomplete ADU remains to shed.
  bool shed_one(std::uint32_t protect_id);
  std::map<std::uint32_t, Reassembly>::iterator pick_shed_victim(
      std::uint32_t protect_id);
  void shed(std::map<std::uint32_t, Reassembly>::iterator it);
  void nack_scan();
  void send_progress();
  void check_complete();
  std::size_t reassembly_bytes() const noexcept { return reassembly_bytes_; }

  /// Charges `need` bytes against reassembly_bytes_limit, evicting the
  /// oldest incomplete ADUs (never `for_id`) to make room. False = no room.
  bool reserve_bytes(std::uint32_t for_id, std::size_t need);
  /// Drops an incomplete ADU's buffers; the id stays recoverable via NACK.
  void evict(std::map<std::uint32_t, Reassembly>::iterator it);
  /// Erases a pending entry and returns its memory charge to the pool.
  void release_pending(std::map<std::uint32_t, Reassembly>::iterator it);
  /// Records substantive forward progress (feeds the stall watchdog).
  void note_progress() { last_progress_mark_ = loop_.now(); }
  void watchdog_tick();
  /// Stall watchdog verdict: abandon everything, tell the application once.
  void fail_session();

  /// Marks an id delivered-or-abandoned and advances the closed prefix.
  void close_id(std::uint32_t adu_id);

  /// Arms whichever maintenance timers the current state warrants.
  void arm_timers();
  /// ADUs closed so far (delivered + abandoned).
  std::uint32_t closed_count() const noexcept {
    return delivered_count_ + abandoned_count_;
  }
  /// True while some known ADU is still outstanding.
  bool recovery_work_remains() const noexcept {
    const std::uint32_t horizon =
        expected_total_ > 0 ? expected_total_ : highest_seen_;
    return closed_count() < horizon;
  }
  /// True while the session has started but not completed or failed.
  bool session_active() const noexcept {
    return !complete_fired_ && !failed_ && (highest_seen_ > 0 || !pending_.empty());
  }
  bool is_closed(std::uint32_t adu_id) const noexcept {
    return adu_id <= closed_prefix_ || closed_.contains(adu_id);
  }

  EventLoop& loop_;
  NetPath& feedback_out_;
  NetPath* data_in_ = nullptr;  ///< path whose handler this receiver owns
  SessionConfig cfg_;
  ReceiverStats stats_;
  obs::CostAccount manip_cost_;
  obs::CostAccount reassembly_cost_;  ///< stage-1 placement + FEC traffic
  obs::TraceRecorder* trace_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  std::uint16_t flight_track_ = 0;
  /// This ADU's flow-scoped trace id (shared with the sender's side).
  std::uint64_t flight_id(std::uint32_t adu_id) const noexcept;

  std::map<std::uint32_t, Reassembly> pending_;
  std::set<std::uint32_t> closed_;        ///< closed ids above the prefix
  std::uint32_t closed_prefix_ = 0;       ///< ids 1..prefix are all closed
  std::uint32_t delivered_count_ = 0;
  std::uint32_t abandoned_count_ = 0;
  std::uint32_t highest_seen_ = 0;
  std::uint32_t expected_total_ = 0;  ///< 0 until DONE arrives
  std::map<std::uint32_t, NackState> nack_counts_;  ///< ids never seen at all
  bool complete_fired_ = false;
  bool failed_ = false;  ///< stall watchdog gave up; session is inert
  std::size_t reassembly_bytes_ = 0;  ///< bytes charged across pending_

  // Engine offload state. An ADU in manip_inflight_ has left pending_ but
  // is not yet closed: NACK machinery must neither re-request it nor count
  // it complete until its job is harvested.
  struct InflightManip {
    AduName name;
    TransferSyntax syntax = TransferSyntax::kRaw;
  };
  engine::Engine* eng_ = nullptr;
  buf::BufferPool* rx_pool_ = nullptr;  ///< zero-copy opt-in (null = flat)
  /// Compiled presentation plan to fuse into stage 2 (null = none).
  std::shared_ptr<const presentation::PresentationPlan> present_plan_;
  SimDuration engine_harvest_delay_ = 0;
  bool engine_pump_armed_ = false;
  std::map<std::uint32_t, InflightManip> manip_inflight_;

  // Maintenance timers are armed only while the session has open work, so
  // an idle or never-used association does not keep the event loop (or a
  // host's timer wheel) busy forever. Activity re-arms them. Every armed
  // timer's EventId is retained so destruction and terminal failure can
  // cancel it (no callback may outlive the receiver).
  bool nack_timer_armed_ = false;
  bool progress_timer_armed_ = false;
  bool watchdog_armed_ = false;
  EventId nack_timer_ = 0;
  EventId progress_timer_ = 0;
  EventId engine_pump_timer_ = 0;
  EventId watchdog_timer_ = 0;  ///< cancelled on completion so a finished
                                ///< session leaves no event pending
  SimTime last_progress_mark_ = 0;  ///< last substantive forward progress
  /// Cancels every pending maintenance timer (teardown / terminal failure).
  void cancel_timers();

  Rng jitter_rng_;       ///< seeded NACK-backoff jitter stream
  PriorityFn priority_;  ///< overload-shedding rank; unset = all equal

  // Consumption-rate measurement for PROGRESS.
  std::uint64_t bytes_at_last_progress_ = 0;
  SimTime last_progress_at_ = 0;

  std::function<void(Adu&&)> on_adu_;
  std::function<void(AduChain&&)> on_adu_chain_;
  std::function<void(std::uint32_t, const AduName&, bool)> on_adu_lost_;
  std::function<void()> on_complete_;
  std::function<void()> on_session_failed_;
};

}  // namespace ngp::alf
