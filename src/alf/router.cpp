#include "alf/router.h"

#include "alf/negotiate.h"
#include "obs/metrics.h"

namespace ngp::alf {

FrameRouter::FrameRouter(NetPath& path) : path_(path) {
  path_.set_handler([this](ConstBytes frame) { on_frame(frame); });
}

FrameRouter::PlanePath& FrameRouter::plane(Plane p, std::uint16_t session) {
  const auto key = std::make_pair(static_cast<std::uint8_t>(p), session);
  auto it = planes_.find(key);
  if (it == planes_.end()) {
    it = planes_.emplace(key, std::make_unique<PlanePath>(*this, p, session)).first;
  }
  return *it->second;
}

NetPath& FrameRouter::data_plane(std::uint16_t session) {
  return plane(Plane::kData, session);
}

NetPath& FrameRouter::feedback_plane(std::uint16_t session) {
  return plane(Plane::kFeedback, session);
}

NetPath& FrameRouter::handshake_plane() { return plane(Plane::kHandshake, 0); }

void FrameRouter::on_frame(ConstBytes frame) {
  // Handshake frames have their own magic and no session field yet.
  if (is_handshake_frame(frame)) {
    auto key = std::make_pair(static_cast<std::uint8_t>(Plane::kHandshake),
                              std::uint16_t{0});
    auto it = planes_.find(key);
    if (it != planes_.end() && it->second->has_handler()) {
      ++stats_.frames_routed;
      it->second->deliver(frame);
    } else {
      ++stats_.frames_unroutable;
    }
    return;
  }

  // ALF frames: peek type + session via the full decoder (verifies the
  // header checksum exactly once, here at the demux point).
  auto msg = decode_message(frame);
  if (!msg) {
    ++stats_.frames_undecodable;
    return;
  }
  Plane p;
  std::uint16_t session;
  switch (msg->type) {
    case MessageType::kData:
      p = Plane::kData;
      session = msg->data.session;
      break;
    case MessageType::kDone:
      p = Plane::kData;
      session = msg->done.session;
      break;
    case MessageType::kNack:
      p = Plane::kFeedback;
      session = msg->nack.session;
      break;
    case MessageType::kProgress:
      p = Plane::kFeedback;
      session = msg->progress.session;
      break;
    default:
      ++stats_.frames_undecodable;
      return;
  }
  auto it = planes_.find(std::make_pair(static_cast<std::uint8_t>(p), session));
  if (it == planes_.end() || !it->second->has_handler()) {
    ++stats_.frames_unroutable;
    return;
  }
  ++stats_.frames_routed;
  it->second->deliver(frame);
}

void FrameRouter::emit_metrics(obs::MetricSink& sink) const {
  sink.counter("frames_routed", stats_.frames_routed);
  sink.counter("frames_unroutable", stats_.frames_unroutable);
  sink.counter("frames_undecodable", stats_.frames_undecodable);
}

void FrameRouter::register_metrics(obs::MetricsRegistry& reg, std::string prefix) const {
  reg.add_source(std::move(prefix),
                 [this](obs::MetricSink& sink) { emit_metrics(sink); });
}

}  // namespace ngp::alf
