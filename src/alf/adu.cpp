#include "alf/adu.h"

namespace ngp {

std::string AduName::to_string() const {
  switch (ns) {
    case NameSpace::kGeneric:
      return "generic(" + std::to_string(a) + ")";
    case NameSpace::kFileRegion: {
      const auto f = FileRegionName::from_name(*this);
      return "file[" + std::to_string(f.receiver_offset) + "+" +
             std::to_string(f.length) + ")";
    }
    case NameSpace::kVideoRegion: {
      const auto v = VideoRegionName::from_name(*this);
      return "video(f" + std::to_string(v.frame) + ",x" + std::to_string(v.tile_x) +
             ",y" + std::to_string(v.tile_y) + ",t" + std::to_string(v.timestamp_ms) +
             "ms)";
    }
    case NameSpace::kRpcArg: {
      const auto r = RpcArgName::from_name(*this);
      return "rpc(call " + std::to_string(r.call_id) + ", arg " +
             std::to_string(r.arg_index) + ")";
    }
  }
  return "?";
}

}  // namespace ngp
