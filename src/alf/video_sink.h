// video_sink.h — real-time video assembly from VideoRegion-named ADUs.
//
// §5's streaming example: each ADU names its place "in space (where on the
// screen it goes) and in time (which video frame it is a part of)", the
// application "accepts less than perfect delivery and continues unchecked"
// (RetransmitPolicy::kNone), and timestamps drive playout regeneration
// (§3's timestamping function). A tile missing at its frame's playout
// deadline is concealed with the co-located tile of the previous frame —
// the new data that eventually "fixes the consequences of the loss" arrives
// with the next frame.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

#include "alf/adu.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace ngp::obs {
class MetricSink;
class MetricsRegistry;
}  // namespace ngp::obs

namespace ngp::alf {

struct VideoSinkStats {
  std::uint64_t tiles_placed = 0;
  std::uint64_t tiles_late = 0;     ///< arrived after the frame's deadline
  std::uint64_t tiles_lost = 0;     ///< reported lost by the transport
  std::uint64_t frames_rendered = 0;
  std::uint64_t frames_complete = 0;     ///< rendered with every tile fresh
  std::uint64_t frames_concealed = 0;    ///< rendered with >=1 concealed tile
  std::uint64_t tiles_concealed = 0;
};

/// Assembles tiled video frames under a playout clock.
class VideoSink {
 public:
  /// Geometry: frames are `tiles_x` x `tiles_y` tiles of `tile_bytes` each.
  /// Playout: frame f's deadline is `playout_base + f * frame_interval`.
  VideoSink(std::uint16_t tiles_x, std::uint16_t tiles_y, std::size_t tile_bytes,
            SimTime playout_base, SimDuration frame_interval);

  /// Places one complete tile ADU at simulated time `now`. Tiles for
  /// already-rendered frames count late and are discarded.
  Status place(const Adu& adu, SimTime now);

  /// Chain-delivery variant (zero-copy datapath, DESIGN.md §12): a kRaw
  /// tile's segments scatter straight into the frame — the only copy the
  /// sink makes is final placement. Framed syntaxes flatten once first
  /// (their headers must be contiguous to parse).
  Status place(const AduChain& adu, SimTime now);

  /// Transport-level loss report (tile never arrived).
  void mark_lost(const AduName& name);

  /// Renders every frame whose deadline has passed (call as the playout
  /// clock advances). Missing tiles are concealed from the previous frame.
  void render_due(SimTime now);

  /// Frames [0, n) rendered so far.
  std::uint64_t frames_rendered() const noexcept { return stats_.frames_rendered; }
  const VideoSinkStats& stats() const noexcept { return stats_; }

  /// Writes playout counters into one snapshot source.
  void emit_metrics(obs::MetricSink& sink) const;
  /// Registers emit_metrics under `prefix` (e.g. "app.video").
  void register_metrics(obs::MetricsRegistry& reg, std::string prefix) const;

  /// The most recently rendered frame image (tiles row-major).
  ConstBytes screen() const noexcept { return {screen_.data(), screen_.size()}; }

 private:
  std::size_t tile_index(std::uint16_t x, std::uint16_t y) const noexcept {
    return std::size_t{y} * tiles_x_ + x;
  }
  SimTime deadline(std::uint32_t frame) const noexcept {
    return playout_base_ + static_cast<SimDuration>(frame) * frame_interval_;
  }

  struct PendingFrame {
    std::vector<std::uint8_t> pixels;   ///< tiles_x*tiles_y*tile_bytes
    std::vector<bool> tile_present;
    std::size_t present_count = 0;
  };

  std::uint16_t tiles_x_, tiles_y_;
  std::size_t tile_bytes_;
  SimTime playout_base_;
  SimDuration frame_interval_;

  std::map<std::uint32_t, PendingFrame> pending_;
  std::uint32_t next_render_ = 0;  ///< next frame number to render
  std::vector<std::uint8_t> screen_;
  VideoSinkStats stats_;
};

}  // namespace ngp::alf
