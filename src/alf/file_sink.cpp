#include "alf/file_sink.h"

namespace ngp::alf {

Status FileSink::place(const Adu& adu) {
  if (adu.name.ns != NameSpace::kFileRegion) {
    return Error{ErrorCode::kMalformed, "not a file-region ADU"};
  }
  const auto region = FileRegionName::from_name(adu.name);

  // Stage-2 presentation processing: decode the transfer syntax here, in
  // application context — straight into the file image (the decode IS the
  // final-placement copy; no intermediate buffer).
  auto view = decode_octets_view(adu.syntax, adu.payload.span());
  if (!view) return view.error();
  if (view->size() != region.length) {
    return Error{ErrorCode::kMalformed, "decoded size != named region length"};
  }

  const std::uint64_t end = region.receiver_offset + region.length;
  if (end > file_.size()) file_.resize(end);
  std::memcpy(file_.data() + region.receiver_offset, view->data(), view->size());

  ++adus_placed_;
  bytes_placed_ += region.length;
  if (region.receiver_offset < highest_end_) ++ooo_placements_;
  highest_end_ = std::max(highest_end_, end);
  return Status::ok();
}

Status FileSink::place(const AduChain& adu) {
  if (adu.name.ns != NameSpace::kFileRegion) {
    return Error{ErrorCode::kMalformed, "not a file-region ADU"};
  }
  // Framed syntaxes: trim the framing off a shared-slice copy of the chain
  // (reference counts, not bytes) so the remaining slices ARE the payload —
  // the scatter placement below is then the transfer's ONLY copy, same as
  // kRaw (DESIGN.md §12's placement floor).
  buf::BufChain payload = adu.payload;
  if (auto s = decode_octets_chain(adu.syntax, payload); !s.is_ok()) {
    return s;
  }
  const auto region = FileRegionName::from_name(adu.name);
  if (payload.size() != region.length) {
    return Error{ErrorCode::kMalformed, "decoded size != named region length"};
  }

  const std::uint64_t end = region.receiver_offset + region.length;
  if (end > file_.size()) file_.resize(end);
  std::uint8_t* dst = file_.data() + region.receiver_offset;
  payload.for_each([&dst](ConstBytes seg) {
    std::memcpy(dst, seg.data(), seg.size());
    dst += seg.size();
  });

  ++adus_placed_;
  bytes_placed_ += region.length;
  if (region.receiver_offset < highest_end_) ++ooo_placements_;
  highest_end_ = std::max(highest_end_, end);
  return Status::ok();
}

void FileSink::mark_lost(const AduName& name) {
  if (name.ns != NameSpace::kFileRegion) return;
  const auto region = FileRegionName::from_name(name);
  holes_.emplace_back(region.receiver_offset, region.length);
}

}  // namespace ngp::alf
