#include "alf/file_sink.h"

namespace ngp::alf {

Status FileSink::place(const Adu& adu) {
  if (adu.name.ns != NameSpace::kFileRegion) {
    return Error{ErrorCode::kMalformed, "not a file-region ADU"};
  }
  const auto region = FileRegionName::from_name(adu.name);

  // Stage-2 presentation processing: decode the transfer syntax here, in
  // application context.
  auto decoded = decode_octets(adu.syntax, adu.payload.span());
  if (!decoded) return decoded.error();
  if (decoded->size() != region.length) {
    return Error{ErrorCode::kMalformed, "decoded size != named region length"};
  }

  const std::uint64_t end = region.receiver_offset + region.length;
  if (end > file_.size()) file_.resize(end);
  std::memcpy(file_.data() + region.receiver_offset, decoded->data(), decoded->size());

  ++adus_placed_;
  bytes_placed_ += region.length;
  if (region.receiver_offset < highest_end_) ++ooo_placements_;
  highest_end_ = std::max(highest_end_, end);
  return Status::ok();
}

void FileSink::mark_lost(const AduName& name) {
  if (name.ns != NameSpace::kFileRegion) return;
  const auto region = FileRegionName::from_name(name);
  holes_.emplace_back(region.receiver_offset, region.length);
}

}  // namespace ngp::alf
