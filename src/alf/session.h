// session.h — shared per-association parameters for ALF endpoints.
//
// Connection establishment and option negotiation happen out-of-band (§3
// explicitly sets aside "session initiation, service location, and so on" —
// they do not occur at data-transfer time). Both endpoints are constructed
// from one SessionConfig, which plays the role of the negotiated agreement:
// the transfer syntax, integrity algorithm, encryption keying, and the
// loss-recovery policy the application selected.
#pragma once

#include <cstdint>

#include "checksum/checksum.h"
#include "crypto/chacha20.h"
#include "presentation/codec.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace ngp::alf {

/// §5: "buffering by the sender transport, recomputation by the sending
/// application, or proceeding without retransmission" — the three recovery
/// options a general-purpose protocol must permit.
enum class RetransmitPolicy : std::uint8_t {
  kTransportBuffered = 0,   ///< sender transport keeps a copy until done
  kApplicationRecompute = 1,///< sender app regenerates the ADU on demand
  kNone = 2,                ///< real-time: losses are the receiver's problem
};

/// §6: run receive-side manipulations as one fused loop or layer-by-layer.
enum class ProcessMode : std::uint8_t {
  kIntegrated = 0,  ///< ILP: single pass (verify+decrypt in one loop)
  kLayered = 1,     ///< conventional: one pass per manipulation
};

struct SessionConfig {
  std::uint16_t session_id = 1;
  TransferSyntax syntax = TransferSyntax::kRaw;
  ChecksumKind checksum = ChecksumKind::kInternet;
  RetransmitPolicy retransmit = RetransmitPolicy::kTransportBuffered;
  ProcessMode process_mode = ProcessMode::kIntegrated;

  bool encrypt = false;  ///< ChaCha20 with per-ADU nonce derived from adu_id
  ChaChaKey key{};       ///< shared key (out-of-band key agreement)

  /// ADU-level FEC (footnote 10): one XOR parity fragment per `fec_k` data
  /// fragments. 0 disables FEC. Most valuable with RetransmitPolicy::kNone
  /// (no time for a NACK round trip) and on high-loss substrates.
  std::uint8_t fec_k = 0;

  /// Sender pacing rate, bits/second (out-of-band flow control). 0 = line
  /// rate (no pacing).
  double pace_bps = 0;

  /// Recovery epoch this endpoint speaks (supervised restart, DESIGN.md
  /// §10): a restarted incarnation bumps the epoch, and the receiver drops
  /// DATA fragments stamped with any other epoch as stale. 0 is the
  /// initial epoch and encodes identically to the pre-epoch wire format.
  std::uint8_t epoch = 0;
  /// Sender: first ADU id this incarnation assigns. A restarted sender
  /// continues its predecessor's id space (ids are the recovery handles a
  /// RESUME bitmap refers to), so the supervisor passes the old
  /// next_adu_id here. 0 is reserved; must be >= 1.
  std::uint32_t first_adu_id = 1;

  /// Receiver: how long an ADU-id gap may persist before it is NACKed
  /// (covers plain reordering without spurious recovery traffic).
  SimDuration nack_delay = 20 * kMillisecond;
  /// Receiver: re-NACK interval while an ADU stays missing.
  SimDuration nack_retry = 50 * kMillisecond;
  /// Receiver: explicit ceiling on the per-ADU NACK exponential backoff
  /// (the doubling otherwise tops out at nack_retry * 64). 0 = no extra
  /// cap beyond that implicit one.
  SimDuration nack_backoff_cap = 0;
  /// Receiver: deterministic seeded jitter added to every NACK backoff, as
  /// a fraction of the backoff in [0, nack_jitter). Many sessions
  /// recovering from one shared outage must not synchronise their NACK
  /// storms; the jitter decorrelates them while staying reproducible.
  double nack_jitter = 0.25;
  /// Seed for the endpoint's private jitter stream. 0 derives one from
  /// session_id, so unconfigured endpoints remain deterministic.
  std::uint64_t recovery_seed = 0;
  /// Receiver: give up on an ADU after this many NACKs (then report loss
  /// to the application in application terms).
  int max_nacks = 10;
  /// Receiver: progress-report cadence (out-of-band feedback).
  SimDuration progress_interval = 50 * kMillisecond;

  /// Sender: cap on buffered-for-retransmission bytes (policy kTransportBuffered).
  std::size_t retransmit_buffer_limit = 16 << 20;

  // --- Hostile-substrate hardening (fault-injection work, DESIGN.md §5) ---
  // Every fragment header is attacker-controlled input: a forged adu_len is
  // one header away from unbounded allocation, a forged adu_id from
  // unbounded bookkeeping. These bounds cap what any frame can commit the
  // receiver to before its bytes have proven themselves.

  /// Receiver: largest claimed adu_len accepted; fragments claiming more
  /// are counted corrupt and dropped before any allocation.
  std::uint32_t max_adu_len = 8 << 20;

  /// Receiver: cap on total reassembly memory (ADU buffers + FEC parity)
  /// across all pending ADUs. When a new ADU does not fit, the oldest
  /// incomplete ADU is evicted (its id stays recoverable via NACK).
  /// 0 = unlimited.
  std::size_t reassembly_bytes_limit = 32 << 20;

  /// Receiver: ADU ids are only accepted within this window above the
  /// closed prefix, bounding the nack/closed bookkeeping sets and the NACK
  /// scan range against forged far-future ids. 0 = unlimited.
  std::uint32_t adu_id_window = 1 << 16;

  // --- Graceful degradation under overload (DESIGN.md §10.3) ---
  // ALF's escape hatch: because the application names its data, the
  // receiver can shed the least important incomplete ADUs under memory or
  // engine pressure instead of stalling (or evicting) indiscriminately.

  /// Receiver: once reassembly memory exceeds this mark, shed
  /// lowest-priority incomplete ADUs (see AlfReceiver::set_priority) until
  /// back under shed_lowwater. Should sit below reassembly_bytes_limit so
  /// policy acts before the hard limit's blind eviction. 0 disables.
  std::size_t shed_highwater = 0;
  /// Shedding target. 0 = shed_highwater / 2.
  std::size_t shed_lowwater = 0;
  /// Receiver: engine backlog (offloaded, unharvested ADUs) at or above
  /// which each further offload sheds one lowest-priority incomplete ADU.
  /// 0 disables.
  std::size_t engine_shed_highwater = 0;

  /// Both ends: stall watchdog. A receiver session hearing nothing valid
  /// for this long — no validated current-epoch fragment, no DONE news —
  /// is abandoned via on_session_failed (silence, not redundancy, is the
  /// failure signal: duplicate traffic still proves the peer is alive); a
  /// finished sender hearing no feedback for this long gives up waiting
  /// for the DONE-ack and releases its buffers. 0 disables.
  SimDuration stall_timeout = 30 * kSecond;

  /// Single bounds-check path for a whole config (the checks the endpoint
  /// constructors used to scatter): every rejectable combination is named
  /// here, and negotiate.cpp runs it so a malformed offer dies at
  /// handshake time rather than as a misbehaving endpoint. Endpoints
  /// assume a validated config.
  Status validate() const;

  /// Fluent construction that cannot hand out a malformed config: the
  /// builder's build() runs validate(), so errors surface at construction
  /// instead of at first use. Aggregate init stays supported for call
  /// sites that prefer it.
  static class SessionConfigBuilder builder();
};

/// Fluent builder over SessionConfig. Each setter names the field it sets;
/// build() is the only exit that yields a config, and it validates.
class SessionConfigBuilder {
 public:
  SessionConfigBuilder& session_id(std::uint16_t v) { cfg_.session_id = v; return *this; }
  SessionConfigBuilder& syntax(TransferSyntax v) { cfg_.syntax = v; return *this; }
  SessionConfigBuilder& checksum(ChecksumKind v) { cfg_.checksum = v; return *this; }
  SessionConfigBuilder& retransmit(RetransmitPolicy v) { cfg_.retransmit = v; return *this; }
  SessionConfigBuilder& process_mode(ProcessMode v) { cfg_.process_mode = v; return *this; }
  /// Enables encryption with the shared key in one step (an encrypting
  /// config without a key is not expressible through the builder).
  SessionConfigBuilder& encrypt(const ChaChaKey& key) {
    cfg_.encrypt = true;
    cfg_.key = key;
    return *this;
  }
  SessionConfigBuilder& fec_k(std::uint8_t v) { cfg_.fec_k = v; return *this; }
  SessionConfigBuilder& pace_bps(double v) { cfg_.pace_bps = v; return *this; }
  SessionConfigBuilder& epoch(std::uint8_t v) { cfg_.epoch = v; return *this; }
  SessionConfigBuilder& first_adu_id(std::uint32_t v) { cfg_.first_adu_id = v; return *this; }
  SessionConfigBuilder& nack_delay(SimDuration v) { cfg_.nack_delay = v; return *this; }
  SessionConfigBuilder& nack_retry(SimDuration v) { cfg_.nack_retry = v; return *this; }
  SessionConfigBuilder& nack_backoff_cap(SimDuration v) { cfg_.nack_backoff_cap = v; return *this; }
  SessionConfigBuilder& nack_jitter(double v) { cfg_.nack_jitter = v; return *this; }
  SessionConfigBuilder& recovery_seed(std::uint64_t v) { cfg_.recovery_seed = v; return *this; }
  SessionConfigBuilder& max_nacks(int v) { cfg_.max_nacks = v; return *this; }
  SessionConfigBuilder& progress_interval(SimDuration v) { cfg_.progress_interval = v; return *this; }
  SessionConfigBuilder& retransmit_buffer_limit(std::size_t v) { cfg_.retransmit_buffer_limit = v; return *this; }
  SessionConfigBuilder& max_adu_len(std::uint32_t v) { cfg_.max_adu_len = v; return *this; }
  SessionConfigBuilder& reassembly_bytes_limit(std::size_t v) { cfg_.reassembly_bytes_limit = v; return *this; }
  SessionConfigBuilder& adu_id_window(std::uint32_t v) { cfg_.adu_id_window = v; return *this; }
  SessionConfigBuilder& shed_highwater(std::size_t v) { cfg_.shed_highwater = v; return *this; }
  SessionConfigBuilder& shed_lowwater(std::size_t v) { cfg_.shed_lowwater = v; return *this; }
  SessionConfigBuilder& engine_shed_highwater(std::size_t v) { cfg_.engine_shed_highwater = v; return *this; }
  SessionConfigBuilder& stall_timeout(SimDuration v) { cfg_.stall_timeout = v; return *this; }

  /// Validates and yields the config; a malformed combination fails here,
  /// at construction, with validate()'s diagnostic.
  Result<SessionConfig> build() const {
    if (Status s = cfg_.validate(); !s.is_ok()) return s.error();
    return cfg_;
  }

 private:
  SessionConfig cfg_;
};

inline SessionConfigBuilder SessionConfig::builder() { return {}; }

}  // namespace ngp::alf
