// adu.h — Application Data Units and their name-spaces.
//
// The paper's central architectural principle (§5): the application breaks
// its data into ADUs; the lower layers preserve those boundaries; each ADU
// carries a name the *receiver* understands, so complete ADUs can be
// processed out of order and losses can be expressed in application terms.
//
// "The sender must be able to specify the disposition of the ADU in terms
//  meaningful to the receiver." — the AduName encodes that disposition.
//
// Three concrete name-spaces from the paper's own examples, plus a generic
// one:
//   * FileRegionName — "for each ADU, the sender must provide information
//     as to its eventual location within the receiver's file"
//   * VideoRegionName — "each ADU must be identified with its location,
//     both in space (where on the screen it goes) and in time (which video
//     frame it is a part of)"
//   * RpcArgName — "the incoming data is made to appear as parameters of a
//     subroutine call"
#pragma once

#include <cstdint>
#include <string>

#include "buf/chain.h"
#include "presentation/codec.h"
#include "util/bytes.h"

namespace ngp {

/// Which application name-space an ADU name lives in.
enum class NameSpace : std::uint8_t {
  kGeneric = 0,     ///< opaque 64-bit ordinal chosen by the application
  kFileRegion = 1,  ///< byte range in the receiver's file
  kVideoRegion = 2, ///< (frame, x, y) tile plus presentation timestamp
  kRpcArg = 3,      ///< (call id, argument index)
};

/// Wire-neutral ADU name: a name-space tag plus three 64-bit fields whose
/// interpretation belongs to the name-space. Carried verbatim in every
/// fragment so any transmission unit is self-describing.
struct AduName {
  NameSpace ns = NameSpace::kGeneric;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;

  bool operator==(const AduName&) const noexcept = default;

  std::string to_string() const;
};

/// Generic ordinal name.
inline AduName generic_name(std::uint64_t ordinal) {
  return AduName{NameSpace::kGeneric, ordinal, 0, 0};
}

/// Byte region of the receiver's file. `receiver_offset` is computed by
/// the sender *after* presentation conversion (§5: the sender performs
/// enough conversion to compute receiver-meaningful placement).
struct FileRegionName {
  std::uint64_t receiver_offset = 0;
  std::uint64_t length = 0;

  AduName to_name() const {
    return AduName{NameSpace::kFileRegion, receiver_offset, length, 0};
  }
  static FileRegionName from_name(const AduName& n) {
    return FileRegionName{n.a, n.b};
  }
};

/// Spatio-temporal tile of a video stream.
struct VideoRegionName {
  std::uint32_t frame = 0;        ///< which video frame (time)
  std::uint16_t tile_x = 0;       ///< where on the screen (space)
  std::uint16_t tile_y = 0;
  std::uint32_t timestamp_ms = 0; ///< presentation time (§3 "timestamping")

  AduName to_name() const {
    return AduName{NameSpace::kVideoRegion, frame,
                   (std::uint64_t{tile_x} << 16) | tile_y, timestamp_ms};
  }
  static VideoRegionName from_name(const AduName& n) {
    return VideoRegionName{static_cast<std::uint32_t>(n.a),
                           static_cast<std::uint16_t>(n.b >> 16),
                           static_cast<std::uint16_t>(n.b & 0xFFFF),
                           static_cast<std::uint32_t>(n.c)};
  }
};

/// One argument of a remote procedure call.
struct RpcArgName {
  std::uint64_t call_id = 0;
  std::uint32_t arg_index = 0;

  AduName to_name() const { return AduName{NameSpace::kRpcArg, call_id, arg_index, 0}; }
  static RpcArgName from_name(const AduName& n) {
    return RpcArgName{n.a, static_cast<std::uint32_t>(n.b)};
  }
};

/// A complete Application Data Unit as the application sees it.
struct Adu {
  AduName name;
  TransferSyntax syntax = TransferSyntax::kRaw;
  ByteBuffer payload;  ///< transfer-syntax encoded bytes
};

/// A complete ADU delivered over the zero-copy receive path: the payload
/// is a refcounted scatter-gather chain of pool segments — the very bytes
/// the (simulated) wire deposited, never flattened. The application now
/// owns the chain; dropping it recycles the segments. Consumers that need
/// flat bytes call payload.flatten() and pay the one copy themselves.
struct AduChain {
  AduName name;
  TransferSyntax syntax = TransferSyntax::kRaw;
  buf::BufChain payload;
};

}  // namespace ngp
