// adversary.h — protocol-aware adversarial frame forgery for FaultyPath.
//
// FaultyPath (netsim) mangles frames as opaque bytes; the attacks that
// actually probe the receive path's resource bounds need valid-looking ALF
// headers — a forged adu_len that asks for gigabytes, a fragment replayed
// under a foreign session id, a stray id far outside the recovery window.
// ChaosAdversary observes real fragments in flight and derives such frames
// from them (correct magic, sealed header checksum), exactly the frames a
// hostile or buggy substrate could synthesize without knowing any secret.
//
// Used by the chaos/robustness tests and bench_faults; lives in alf because
// it speaks the wire format.
#pragma once

#include <cstdint>
#include <string>

#include "alf/wire.h"
#include "netsim/fault.h"

namespace ngp::obs {
class MetricSink;
class MetricsRegistry;
}  // namespace ngp::obs

namespace ngp::alf {

/// What the forged frames claim, and how often each shape is produced
/// (the adversary rotates deterministically through the enabled shapes).
struct AdversaryConfig {
  bool forge_len = true;        ///< fresh adu_id claiming `forged_adu_len` bytes
  bool cross_session = true;    ///< same fragment under a foreign session id
  bool conflicting_len = true;  ///< existing adu_id, contradictory adu_len
  bool far_future_id = true;    ///< id far beyond the recovery window

  std::uint32_t forged_adu_len = 0x80000000u;  ///< 2^31: the classic forged claim
  std::uint16_t foreign_session_delta = 7;     ///< added to the observed session id
  std::uint32_t far_id_delta = 1u << 24;       ///< added to the observed adu_id
};

/// Counts of each forged shape actually emitted (for test assertions).
struct AdversaryStats {
  std::uint64_t forged_len = 0;
  std::uint64_t cross_session = 0;
  std::uint64_t conflicting_len = 0;
  std::uint64_t far_future_id = 0;
};

/// Builds an AdversaryFn for FaultyPath::set_adversary. The returned
/// callable keeps a reference to `stats`; the caller owns both lifetimes.
AdversaryFn make_chaos_adversary(AdversaryConfig config, AdversaryStats& stats);

/// Writes the forged-shape counters into one snapshot source.
void emit_metrics(obs::MetricSink& sink, const AdversaryStats& stats);
/// Registers the adversary counters under `prefix` (e.g. "chaos.adversary").
/// `stats` must outlive the registry or the source must be removed first.
void register_metrics(obs::MetricsRegistry& reg, std::string prefix,
                      const AdversaryStats& stats);

/// Forges a single fragment claiming `claimed_len` total ADU bytes with a
/// tiny payload — the minimal "unbounded allocation" probe, usable without
/// any observed traffic.
ByteBuffer forge_len_fragment(std::uint16_t session, std::uint32_t adu_id,
                              std::uint32_t claimed_len);

}  // namespace ngp::alf
