#include "alf/fec.h"

#include <algorithm>
#include <cstring>

namespace ngp::alf {

void xor_into(MutableBytes dst, ConstBytes src) noexcept {
  std::size_t i = 0;
  while (i + 8 <= src.size()) {
    store_u64_le(dst.data() + i, load_u64_le(dst.data() + i) ^ load_u64_le(src.data() + i));
    i += 8;
  }
  for (; i < src.size(); ++i) dst[i] ^= src[i];
}

ByteBuffer compute_parity(ConstBytes adu_payload, const FecGroup& group) {
  ByteBuffer parity(group.parity_length());
  const std::size_t n = group.fragment_count();
  for (std::size_t i = 0; i < n; ++i) {
    xor_into(parity.span(),
             adu_payload.subspan(group.fragment_offset(i), group.fragment_length(i)));
  }
  return parity;
}

ByteBuffer reconstruct_fragment(ConstBytes adu_buf, ConstBytes parity_block,
                                const FecGroup& group, std::size_t missing_index) {
  ByteBuffer out(group.fragment_length(missing_index));
  reconstruct_fragment_into(adu_buf, parity_block, group, missing_index, out.span());
  return out;
}

void reconstruct_fragment_into(ConstBytes adu_buf, ConstBytes parity_block,
                               const FecGroup& group, std::size_t missing_index,
                               MutableBytes dst) {
  // The parity block spans the group's LARGEST fragment; when the missing
  // fragment is the short final one, only its prefix of the parity (and of
  // each surviving fragment) matters — XOR is byte-independent, so the
  // clipped reconstruction equals the truncated full-width one.
  std::memcpy(dst.data(), parity_block.data(), dst.size());
  const std::size_t n = group.fragment_count();
  for (std::size_t i = 0; i < n; ++i) {
    if (i == missing_index) continue;
    const std::size_t take = std::min(group.fragment_length(i), dst.size());
    xor_into(dst, adu_buf.subspan(group.fragment_offset(i), take));
  }
}

}  // namespace ngp::alf
