#include "alf/fec.h"

namespace ngp::alf {

namespace {

/// XORs `src` into `dst` (dst.size() >= src.size()), word-wise.
void xor_into(MutableBytes dst, ConstBytes src) noexcept {
  std::size_t i = 0;
  while (i + 8 <= src.size()) {
    store_u64_le(dst.data() + i, load_u64_le(dst.data() + i) ^ load_u64_le(src.data() + i));
    i += 8;
  }
  for (; i < src.size(); ++i) dst[i] ^= src[i];
}

}  // namespace

ByteBuffer compute_parity(ConstBytes adu_payload, const FecGroup& group) {
  ByteBuffer parity(group.parity_length());
  const std::size_t n = group.fragment_count();
  for (std::size_t i = 0; i < n; ++i) {
    xor_into(parity.span(),
             adu_payload.subspan(group.fragment_offset(i), group.fragment_length(i)));
  }
  return parity;
}

ByteBuffer reconstruct_fragment(ConstBytes adu_buf, ConstBytes parity_block,
                                const FecGroup& group, std::size_t missing_index) {
  ByteBuffer out(parity_block);
  const std::size_t n = group.fragment_count();
  for (std::size_t i = 0; i < n; ++i) {
    if (i == missing_index) continue;
    xor_into(out.span(),
             adu_buf.subspan(group.fragment_offset(i), group.fragment_length(i)));
  }
  out.resize(group.fragment_length(missing_index));
  return out;
}

}  // namespace ngp::alf
