// wire.h — ALF protocol wire formats.
//
// Design rule from §6: minimize in-band ordering constraints. Every DATA
// fragment is fully self-describing — it carries the ADU's name, syntax,
// total length, its own offset within the ADU, and the per-ADU checksum —
// so the only control step that must precede manipulation is demux (the one
// constraint the paper concedes is unavoidable). Any fragment can be placed
// into its ADU with no other connection state.
//
// Control traffic (NACK / PROGRESS / DONE) is out-of-band with respect to
// the data pipeline: it regulates, it never gates manipulation.
//
// DATA fragment layout (big-endian), header 54 bytes:
//   magic(1) type(1) session(2) adu_id(4)
//   ns(1) name.a(8) name.b(8) name.c(8)
//   syntax(1) flags(1) checksum_kind(1) reserved(2)
//   adu_len(4) frag_off(4) frag_len(2)
//   adu_checksum(4) header_checksum(2)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "alf/adu.h"
#include "checksum/checksum.h"
#include "util/bytes.h"

namespace ngp::alf {

constexpr std::uint8_t kMagic = 0x41;  // 'A'

enum class MessageType : std::uint8_t {
  kData = 0,
  kNack = 1,      ///< receiver -> sender: these ADU ids are missing
  kProgress = 2,  ///< receiver -> sender: rate/credit feedback (out-of-band)
  kDone = 3,      ///< sender -> receiver: stream complete, total ADU count
  kResume = 4,    ///< receiver -> sender: new epoch + received-ADU bitmap
  kProbe = 5,     ///< either way: path liveness probe (circuit breakers)
};

enum AduFlags : std::uint8_t {
  kFlagEncrypted = 0x01,  ///< payload is ChaCha20-encrypted (per-ADU nonce)
  kFlagLastAdu = 0x02,    ///< this ADU is the stream's last (EOS hint)
  kFlagFecParity = 0x04,  ///< payload is an XOR parity block, not ADU bytes
};

/// One transmission unit of an ADU.
struct DataFragment {
  std::uint16_t session = 0;
  /// Recovery epoch (supervised restart, DESIGN.md §10): a restarted
  /// session bumps the epoch so fragments from the failed incarnation are
  /// recognisably stale. Carried in the header byte that used to be
  /// reserved padding — epoch 0 encodes identically to the old format.
  std::uint8_t epoch = 0;
  std::uint32_t adu_id = 0;     ///< sender-sequential id (recovery handle)
  AduName name;                 ///< application name (delivery handle)
  TransferSyntax syntax = TransferSyntax::kRaw;
  std::uint8_t flags = 0;
  ChecksumKind checksum_kind = ChecksumKind::kInternet;
  /// ADU-level FEC (paper footnote 10): data fragments per XOR parity
  /// block, 0 = FEC off. For a kFlagFecParity fragment, frag_off is the
  /// byte offset of the group's first data fragment and the payload is the
  /// XOR of the group's (zero-padded) fragment payloads.
  std::uint8_t fec_k = 0;
  std::uint32_t adu_len = 0;    ///< total encoded ADU length
  std::uint32_t frag_off = 0;   ///< this fragment's offset within the ADU
  std::uint32_t adu_checksum = 0;  ///< over the full (plaintext) ADU payload
  ConstBytes payload;

  static constexpr std::size_t kHeaderSize = 54;

  bool is_parity() const noexcept { return (flags & kFlagFecParity) != 0; }
};

/// Receiver -> sender: ADU ids the receiver believes lost.
struct NackMessage {
  std::uint16_t session = 0;
  std::vector<std::uint32_t> adu_ids;

  static constexpr std::size_t kMaxIds = 256;
};

/// Receiver -> sender rate/credit report. This is the paper's out-of-band
/// flow control: "the actual computation and negotiation of the transfer
/// rate can be performed on an out-of-band basis" (§3).
struct ProgressMessage {
  std::uint16_t session = 0;
  std::uint32_t complete_adus = 0;   ///< ADUs closed (delivered or abandoned)
  std::uint32_t highest_adu_seen = 0;
  std::uint32_t consume_rate_kbps = 0;  ///< receiver's measured drain rate
  /// True once the receiver KNOWS the stream ended (it saw DONE and closed
  /// every ADU). Distinct from complete_adus == total: a receiver that
  /// closed everything it has seen but missed DONE is NOT complete, and
  /// the sender must keep re-offering DONE.
  bool session_complete = false;
};

/// Sender -> receiver end-of-stream marker.
struct DoneMessage {
  std::uint16_t session = 0;
  std::uint32_t total_adus = 0;
};

/// Receiver -> sender: supervised-restart delta-resume summary (DESIGN.md
/// §10). Establishes a new epoch and tells the sender which ADU ids the
/// receiver already closed, so only the remainder is retransmitted:
/// ids 1..closed_prefix are all closed, and bitmap bit i (byte i/8, bit
/// i%8 LSB-first) covers id closed_prefix + 1 + i.
struct ResumeMessage {
  std::uint16_t session = 0;
  std::uint8_t epoch = 0;          ///< the NEW epoch being established
  std::uint32_t closed_prefix = 0; ///< ids 1..prefix closed at the receiver
  std::vector<std::uint8_t> bitmap;

  /// Bitmap bytes are bounded: a RESUME summarises at most 8 * kMaxBytes
  /// ids above the prefix (everything further is simply re-sent — delta
  /// resume is an optimisation, never a correctness requirement).
  static constexpr std::size_t kMaxBitmapBytes = 1024;

  bool id_closed(std::uint32_t adu_id) const noexcept {
    if (adu_id == 0) return false;
    if (adu_id <= closed_prefix) return true;
    const std::uint64_t bit = std::uint64_t{adu_id} - closed_prefix - 1;
    if (bit >= std::uint64_t{bitmap.size()} * 8) return false;
    return (bitmap[static_cast<std::size_t>(bit / 8)] >> (bit % 8)) & 1;
  }
};

/// Path liveness probe: circuit breakers half-open a tripped path by
/// sending a few of these and watching whether the path delivers them.
/// Endpoints ignore probes entirely — only path-level delivery counters
/// (LinkStats / FaultStats) observe them.
struct ProbeMessage {
  std::uint16_t session = 0;
  std::uint8_t epoch = 0;
  std::uint32_t seq = 0;
};

// ---- Encoding --------------------------------------------------------------

ByteBuffer encode_fragment(const DataFragment& f);
ByteBuffer encode_nack(const NackMessage& m);
ByteBuffer encode_progress(const ProgressMessage& m);
ByteBuffer encode_done(const DoneMessage& m);
ByteBuffer encode_resume(const ResumeMessage& m);
ByteBuffer encode_probe(const ProbeMessage& m);

/// Any decoded ALF message.
struct Message {
  MessageType type = MessageType::kData;
  DataFragment data;       // valid when type == kData
  NackMessage nack;        // valid when type == kNack
  ProgressMessage progress;// valid when type == kProgress
  DoneMessage done;        // valid when type == kDone
  ResumeMessage resume;    // valid when type == kResume
  ProbeMessage probe;      // valid when type == kProbe
};

/// Parses and verifies a frame (header checksum). nullopt on any damage.
std::optional<Message> decode_message(ConstBytes frame);

/// Usable payload bytes per fragment for a path MTU.
constexpr std::size_t fragment_payload_capacity(std::size_t mtu) noexcept {
  return mtu > DataFragment::kHeaderSize ? mtu - DataFragment::kHeaderSize : 0;
}

// ---- Frame peeks -----------------------------------------------------------
//
// Every ALF frame starts with the same fixed prefix — magic(1) type(1)
// session(2) — and DATA frames follow it with adu_id(4). The peeks below
// read ONLY that prefix through one shared bounds-checked reader (no
// header-checksum verification: they answer "where does this frame go",
// not "is this frame intact" — the owning endpoint still validates). They
// are the demux primitives of §6: demultiplexing is the one control step
// the paper concedes must precede manipulation.

/// Message type off any recognisable ALF frame; nullopt for garbage,
/// truncation, or foreign protocols.
std::optional<MessageType> peek_message_type(ConstBytes frame) noexcept;

/// Flow demux key: the session id off any recognisable ALF frame (every
/// message type carries it at the same offset), nullopt otherwise. A full
/// flow id pairs this with the peer address of the path the frame arrived
/// on (sessiond::FlowId); the frame itself only names the session.
std::optional<std::uint16_t> peek_flow_id(ConstBytes frame) noexcept;

/// Cheap frame peek for the flight recorder: the flow-scoped trace id
/// ((session << 32) | adu_id) of a DATA frame, or 0 for anything that is
/// not a recognisable DATA frame (control traffic, garbage, foreign
/// protocols). Netsim components take this as an injected tagger so they
/// can label frames without learning the ALF wire format — the same
/// layering rule as fault-plan adversaries.
std::uint64_t peek_flight_tag(ConstBytes frame) noexcept;

}  // namespace ngp::alf
