// fec.h — ADU-level forward error correction (XOR parity).
//
// Footnote 10 of the paper: "lower layer recovery schemes, such as forward
// error correction (FEC), may be applied to these transmission units ...
// our general assertion regarding applications is not meant to preclude
// the use of ADU-level FEC."
//
// Scheme: the sender groups an ADU's data fragments k at a time and emits
// one parity fragment per group — the XOR of the group's payloads, each
// zero-padded to the group's largest fragment. Any single lost fragment in
// a group is reconstructed at the receiver without a retransmission round
// trip. This matters most for RetransmitPolicy::kNone (real-time media,
// where a NACK would arrive too late) and over cell substrates where loss
// amplification makes whole-ADU retransmission expensive (bench_ablation).
//
// The helpers here are pure functions over byte ranges; AlfSender and
// AlfReceiver own the protocol integration.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"

namespace ngp::alf {

/// Geometry of one parity group within an ADU.
struct FecGroup {
  std::size_t group_start = 0;  ///< byte offset of the group's first fragment
  std::size_t k = 0;            ///< data fragments per parity block
  std::size_t frag_capacity = 0;///< nominal fragment payload size
  std::size_t adu_len = 0;

  /// Number of data fragments actually in this group (the last group of an
  /// ADU may be short).
  std::size_t fragment_count() const noexcept {
    const std::size_t span = std::min(k * frag_capacity, adu_len - group_start);
    return (span + frag_capacity - 1) / frag_capacity;
  }

  /// Byte offset of fragment `i` of the group.
  std::size_t fragment_offset(std::size_t i) const noexcept {
    return group_start + i * frag_capacity;
  }

  /// Payload length of fragment `i` of the group.
  std::size_t fragment_length(std::size_t i) const noexcept {
    return std::min(frag_capacity, adu_len - fragment_offset(i));
  }

  /// Parity block length: the largest fragment in the group.
  std::size_t parity_length() const noexcept { return fragment_length(0); }
};

/// XORs `src` into `dst` (dst.size() >= src.size()), word-wise. Exposed so
/// the zero-copy receive path can accumulate parity over pool slices
/// without materializing a flat ADU buffer.
void xor_into(MutableBytes dst, ConstBytes src) noexcept;

/// Computes the XOR parity block for `group` over the (complete) ADU
/// payload.
ByteBuffer compute_parity(ConstBytes adu_payload, const FecGroup& group);

/// Attempts to reconstruct fragment `missing_index` of `group` from the
/// parity block and the other fragments (which must be present in
/// `adu_buf`). Returns the reconstructed fragment bytes.
ByteBuffer reconstruct_fragment(ConstBytes adu_buf, ConstBytes parity_block,
                                const FecGroup& group, std::size_t missing_index);

/// Reconstructs fragment `missing_index` of `group` directly into `dst` —
/// the fragment's own slot in the reassembly buffer, eliminating the
/// staging allocation and second copy of reconstruct_fragment. `dst` must
/// be exactly group.fragment_length(missing_index) bytes and may alias
/// `adu_buf` at the missing fragment's offset (the other fragments' slots
/// are disjoint from it by construction).
void reconstruct_fragment_into(ConstBytes adu_buf, ConstBytes parity_block,
                               const FecGroup& group, std::size_t missing_index,
                               MutableBytes dst);

}  // namespace ngp::alf
