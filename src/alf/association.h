// association.h — one-object, full-duplex ALF association.
//
// The assembled product of the whole suite: a FrameRouter on each link
// direction (§3 multiplexing), an out-of-band handshake (negotiate.h), and
// a sender + receiver pair per side, so both ends can exchange named ADUs
// over a single duplex channel. This is the API a downstream application
// starts from; the lower layers stay public for anyone assembling a
// different shape (striping, simplex flows, custom substrates).
//
// Convention: the initiator's outbound ADUs travel on the offered
// session_id, the responder's outbound on session_id + 1. Both directions
// share every negotiated parameter.
//
//   auto a = Association::initiate(loop, out_path, in_path, offer);
//   a->set_on_established([&](const SessionConfig&) { ... start sending });
//   a->set_on_adu([&](Adu&& adu) { ... });
//   a->send_adu(name, bytes);
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "alf/negotiate.h"
#include "alf/receiver.h"
#include "alf/router.h"
#include "alf/sender.h"

namespace ngp::alf {

/// A full-duplex ALF endpoint (either side of one association).
class Association {
 public:
  /// Active opener: offers `config` to the peer. `out_link` carries frames
  /// toward the peer; `in_link` delivers frames from the peer.
  static std::unique_ptr<Association> initiate(EventLoop& loop, NetPath& out_link,
                                               NetPath& in_link, SessionConfig offer);

  /// Passive opener: answers the first acceptable offer.
  static std::unique_ptr<Association> listen(EventLoop& loop, NetPath& out_link,
                                             NetPath& in_link, Capabilities caps);

  /// Fires once when the handshake concludes (the agreed config, or an
  /// error for refusal/timeout on the initiator side).
  void set_on_established(std::function<void(Result<SessionConfig>)> fn) {
    on_established_ = std::move(fn);
  }

  /// Complete inbound ADUs, out of order as they finish.
  void set_on_adu(std::function<void(Adu&&)> fn) { on_adu_ = std::move(fn); }
  /// Inbound loss reports, in application terms.
  void set_on_adu_lost(
      std::function<void(std::uint32_t, const AduName&, bool)> fn) {
    on_adu_lost_ = std::move(fn);
  }
  /// The peer finished its outbound stream and we have everything.
  void set_on_peer_finished(std::function<void()> fn) { on_peer_done_ = std::move(fn); }

  /// Sends one named ADU (fails with kWouldBlock before establishment).
  Result<std::uint32_t> send_adu(const AduName& name, ConstBytes payload);

  /// Ends our outbound stream (the peer's receive side completes).
  void finish();

  /// Installs the application-recompute callback for our outbound ADUs.
  void set_recompute(RecomputeFn fn);

  bool established() const noexcept { return established_; }
  const SessionConfig& config() const noexcept { return agreed_; }

  /// Transport endpoints (valid after establishment). Stats follow the
  /// uniform convention: a.sender().stats(), a.receiver().stats().
  const AlfSender& sender() const { return *tx_; }
  const AlfReceiver& receiver() const { return *rx_; }

  /// Registers the association's snapshot sources under `prefix`:
  /// prefix.tx (sender), prefix.rx (receiver), prefix.router (demux).
  /// Sources registered before establishment emit nothing until the
  /// endpoints exist; the association must outlive the registry.
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const;

 private:
  Association(EventLoop& loop, NetPath& out_link, NetPath& in_link);

  void establish(const SessionConfig& agreed, bool initiator);

  EventLoop& loop_;
  NetPath& out_link_;  ///< raw sends toward the peer (no routing needed)
  FrameRouter in_router_;  ///< demuxes everything the peer sends us

  std::unique_ptr<HandshakeInitiator> initiator_;
  std::unique_ptr<HandshakeResponder> responder_;
  std::unique_ptr<AlfSender> tx_;
  std::unique_ptr<AlfReceiver> rx_;
  RecomputeFn pending_recompute_;

  bool established_ = false;
  SessionConfig agreed_;

  std::function<void(Result<SessionConfig>)> on_established_;
  std::function<void(Adu&&)> on_adu_;
  std::function<void(std::uint32_t, const AduName&, bool)> on_adu_lost_;
  std::function<void()> on_peer_done_;
};

}  // namespace ngp::alf
