#include "alf/session.h"

#include <cmath>

namespace ngp::alf {

Status SessionConfig::validate() const {
  if (max_adu_len == 0) {
    return Error{ErrorCode::kOutOfRange, "max_adu_len must be positive"};
  }
  if (reassembly_bytes_limit != 0 && reassembly_bytes_limit < max_adu_len) {
    // A full-size ADU could never be reassembled: every transfer of one
    // would livelock on eviction.
    return Error{ErrorCode::kOutOfRange,
                 "reassembly_bytes_limit smaller than max_adu_len"};
  }
  if (retransmit == RetransmitPolicy::kTransportBuffered &&
      retransmit_buffer_limit < max_adu_len) {
    return Error{ErrorCode::kOutOfRange,
                 "retransmit_buffer_limit smaller than max_adu_len"};
  }
  if (!std::isfinite(pace_bps) || pace_bps < 0) {
    return Error{ErrorCode::kOutOfRange, "pace_bps must be finite and >= 0"};
  }
  if (nack_delay <= 0 || nack_retry <= 0) {
    return Error{ErrorCode::kOutOfRange, "nack timers must be positive"};
  }
  if (nack_backoff_cap < 0 ||
      (nack_backoff_cap > 0 && nack_backoff_cap < nack_retry)) {
    // A cap below the base retry interval would invert the backoff.
    return Error{ErrorCode::kOutOfRange,
                 "nack_backoff_cap must be 0 (none) or >= nack_retry"};
  }
  if (!std::isfinite(nack_jitter) || nack_jitter < 0 || nack_jitter > 1) {
    return Error{ErrorCode::kOutOfRange, "nack_jitter must be in [0, 1]"};
  }
  if (first_adu_id == 0) {
    return Error{ErrorCode::kOutOfRange, "first_adu_id 0 is reserved"};
  }
  if (shed_lowwater > 0 && shed_highwater > 0 && shed_lowwater >= shed_highwater) {
    return Error{ErrorCode::kOutOfRange,
                 "shed_lowwater must sit below shed_highwater"};
  }
  if (progress_interval <= 0) {
    return Error{ErrorCode::kOutOfRange, "progress_interval must be positive"};
  }
  if (max_nacks < 0) {
    return Error{ErrorCode::kOutOfRange, "max_nacks must be >= 0"};
  }
  if (stall_timeout < 0) {
    return Error{ErrorCode::kOutOfRange, "stall_timeout must be >= 0"};
  }
  if (fec_k == 1) {
    // One parity per single data fragment is pure duplication; the FEC
    // grouping math requires k >= 2 (0 = disabled).
    return Error{ErrorCode::kOutOfRange, "fec_k must be 0 (off) or >= 2"};
  }
  return Status::ok();
}

}  // namespace ngp::alf
