// striper.h — striping an ADU stream across parallel paths/receivers.
//
// §7 of the paper: connecting a network to a parallel processor means "the
// solution seems to be to separate the network into several parts, each of
// which delivers part of the data to part of the processor. But how is the
// data to be dispatched to the correct part? ... if the data is organized
// into ADUs, each ADU will contain enough information to control its own
// delivery."
//
// AlfStriper fans one application ADU stream out over N independent ALF
// lanes (each lane = its own AlfSender / path / AlfReceiver, possibly on a
// different processor node). Because every fragment is self-describing and
// every ADU carries a receiver-meaningful name, the lanes need NO
// coordination: any node can place whatever arrives on its lane.
// StripeCollector is the receiving-side aggregate: it funnels the lanes'
// deliveries into one callback and reports completion when every lane
// completes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "alf/receiver.h"
#include "alf/sender.h"

namespace ngp::alf {

struct StriperStats {
  std::vector<std::uint64_t> adus_per_lane;
  std::uint64_t adus_total = 0;
};

/// Sender-side fan-out over N ALF lanes.
class AlfStriper {
 public:
  /// Lane dispatch policy.
  enum class Policy {
    kRoundRobin,   ///< equal spread, deterministic
    kByNameHash,   ///< same name -> same lane (per-object affinity)
  };

  explicit AlfStriper(std::vector<AlfSender*> lanes, Policy policy = Policy::kRoundRobin);

  /// Sends one ADU on the lane the policy selects. Returns the lane's
  /// ADU id on success.
  Result<std::uint32_t> send_adu(const AduName& name, ConstBytes payload);

  /// Finishes every lane (each emits its own DONE).
  void finish();

  std::size_t lane_count() const noexcept { return lanes_.size(); }
  const StriperStats& stats() const noexcept { return stats_; }

  /// Writes dispatch counters (total + one per lane) into one source.
  void emit_metrics(obs::MetricSink& sink) const;
  /// Registers emit_metrics under `prefix` (e.g. "alf.striper").
  void register_metrics(obs::MetricsRegistry& reg, std::string prefix) const;

 private:
  std::size_t pick_lane(const AduName& name) noexcept;

  std::vector<AlfSender*> lanes_;
  Policy policy_;
  std::size_t next_lane_ = 0;
  StriperStats stats_;
};

/// Receiver-side aggregation of N ALF lanes.
class StripeCollector {
 public:
  /// Registers on every receiver. Callbacks fire from any lane; `lane`
  /// identifies which.
  explicit StripeCollector(std::vector<AlfReceiver*> receivers);

  /// One callback for all lanes' complete ADUs.
  void set_on_adu(std::function<void(std::size_t lane, Adu&&)> fn) {
    on_adu_ = std::move(fn);
  }
  /// Aggregate loss report.
  void set_on_adu_lost(
      std::function<void(std::size_t lane, std::uint32_t, const AduName&, bool)> fn) {
    on_lost_ = std::move(fn);
  }
  /// Fires once all lanes have completed.
  void set_on_complete(std::function<void()> fn) { on_complete_ = std::move(fn); }

  bool complete() const noexcept { return complete_lanes_ == receivers_.size(); }
  std::uint64_t adus_delivered() const noexcept { return delivered_; }

 private:
  std::vector<AlfReceiver*> receivers_;
  std::size_t complete_lanes_ = 0;
  std::uint64_t delivered_ = 0;
  std::function<void(std::size_t, Adu&&)> on_adu_;
  std::function<void(std::size_t, std::uint32_t, const AduName&, bool)> on_lost_;
  std::function<void()> on_complete_;
};

}  // namespace ngp::alf
