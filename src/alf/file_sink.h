// file_sink.h — out-of-order file assembly from FileRegion-named ADUs.
//
// The paper's file-transfer analysis (§5): "the sender must provide
// information as to its eventual location within the receiver's file ...
// the receiver can copy the data into the file at the correct location,
// even though intervening ADUs are missing." FileSink is that receiver-side
// copy: each ADU lands at its named offset the moment it completes,
// independent of arrival order. The sink also decodes the transfer syntax
// (stage-2 presentation processing in application context).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "alf/adu.h"
#include "util/result.h"

namespace ngp::alf {

/// Receives FileRegion ADUs into an in-memory file image.
class FileSink {
 public:
  explicit FileSink(std::size_t expected_size = 0) { file_.resize(expected_size); }

  /// Places one complete ADU. Decodes the transfer syntax, then writes the
  /// octets at the region's offset. Grows the file if needed.
  Status place(const Adu& adu);

  /// Chain-delivery variant (zero-copy datapath, DESIGN.md §12): a kRaw
  /// ADU's segments land straight at the region's offset — one copy, at
  /// final placement. Framed syntaxes flatten once first.
  Status place(const AduChain& adu);

  /// Records a loss, in file terms: the byte range that never arrived.
  void mark_lost(const AduName& name);

  ConstBytes contents() const noexcept { return {file_.data(), file_.size()}; }
  std::size_t size() const noexcept { return file_.size(); }

  std::uint64_t bytes_placed() const noexcept { return bytes_placed_; }
  std::uint64_t adus_placed() const noexcept { return adus_placed_; }
  std::uint64_t out_of_order_placements() const noexcept { return ooo_placements_; }

  /// Lost regions as (offset, length) pairs — the application-meaningful
  /// loss report.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>>& holes() const noexcept {
    return holes_;
  }

 private:
  std::vector<std::uint8_t> file_;
  std::uint64_t bytes_placed_ = 0;
  std::uint64_t adus_placed_ = 0;
  std::uint64_t ooo_placements_ = 0;  ///< placements before a lower offset
  std::uint64_t highest_end_ = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> holes_;
};

}  // namespace ngp::alf
