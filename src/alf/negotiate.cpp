#include "alf/negotiate.h"

#include <algorithm>

namespace ngp::alf {

namespace {
constexpr std::uint8_t kHandshakeMagic = 0x48;  // 'H'
constexpr std::uint8_t kKindOffer = 0;
constexpr std::uint8_t kKindAnswer = 1;
// Private enterprise arc for this protocol suite.
const ber::ObjectId kSyntaxArc{1, 3, 6, 1, 4, 1, 51990, 1};
}  // namespace

ber::ObjectId syntax_oid(TransferSyntax s) {
  ber::ObjectId oid = kSyntaxArc;
  oid.push_back(static_cast<std::uint32_t>(s));
  return oid;
}

std::optional<TransferSyntax> syntax_from_oid(const ber::ObjectId& oid) {
  if (oid.size() != kSyntaxArc.size() + 1) return std::nullopt;
  if (!std::equal(kSyntaxArc.begin(), kSyntaxArc.end(), oid.begin())) {
    return std::nullopt;
  }
  const std::uint32_t leaf = oid.back();
  if (leaf > static_cast<std::uint32_t>(TransferSyntax::kBerToolkit)) {
    return std::nullopt;
  }
  return static_cast<TransferSyntax>(leaf);
}

bool Capabilities::supports(TransferSyntax s) const noexcept {
  return std::find(syntaxes.begin(), syntaxes.end(), s) != syntaxes.end();
}

bool Capabilities::supports(ChecksumKind c) const noexcept {
  return std::find(checksums.begin(), checksums.end(), c) != checksums.end();
}

Result<SessionConfig> respond_to_offer(const SessionConfig& offer,
                                       const Capabilities& local) {
  // Single error path for malformed offers: every bound the endpoints rely
  // on is checked here, at handshake time, before any endpoint exists.
  if (Status v = offer.validate(); !v) return v.error();

  SessionConfig agreed = offer;

  // Transfer syntax is non-negotiable semantics: without a common syntax
  // the association cannot carry meaning.
  if (!local.supports(offer.syntax)) {
    return Error{ErrorCode::kUnsupported, "no common transfer syntax"};
  }
  // Integrity: downgrade to the strongest mutually supported kind.
  if (!local.supports(offer.checksum)) {
    const ChecksumKind order[] = {ChecksumKind::kCrc32, ChecksumKind::kFletcher32,
                                  ChecksumKind::kAdler32, ChecksumKind::kInternet};
    agreed.checksum = ChecksumKind::kNone;
    for (ChecksumKind k : order) {
      if (local.supports(k)) {
        agreed.checksum = k;
        break;
      }
    }
  }
  // Encryption requires both ends keyed.
  if (offer.encrypt && !local.can_encrypt) agreed.encrypt = false;
  // FEC depth bounded by the responder's reconstruction budget. A clamp
  // down to 1 would be pure duplication (validate() rejects it), so the
  // downgrade path disables FEC instead.
  agreed.fec_k = std::min(agreed.fec_k, local.max_fec_k);
  if (agreed.fec_k == 1) agreed.fec_k = 0;
  return agreed;
}

// ---- Wire codecs --------------------------------------------------------------------
// Frame: magic(1) kind(1) | BER SEQUENCE {
//   version INTEGER, session INTEGER, syntax OID, checksum INTEGER,
//   retransmit INTEGER, process INTEGER, encrypt BOOLEAN, fec INTEGER,
//   pace INTEGER (bps), accepted BOOLEAN (answers only) }

namespace {

constexpr std::int64_t kVersion = 1;

ByteBuffer encode_body(const SessionConfig& c, std::optional<bool> accepted) {
  ByteBuffer body;
  ber::BerWriter w(body);
  w.write_integer(kVersion);
  w.write_integer(c.session_id);
  (void)w.write_oid(syntax_oid(c.syntax));
  w.write_integer(static_cast<std::int64_t>(c.checksum));
  w.write_integer(static_cast<std::int64_t>(c.retransmit));
  w.write_integer(static_cast<std::int64_t>(c.process_mode));
  w.write_boolean(c.encrypt);
  w.write_integer(c.fec_k);
  w.write_integer(static_cast<std::int64_t>(c.pace_bps));
  if (accepted) w.write_boolean(*accepted);

  ByteBuffer out;
  out.append(kHandshakeMagic);
  out.append(accepted ? kKindAnswer : kKindOffer);
  ber::BerWriter seq(out);
  seq.begin_sequence(body.size());
  out.append(body.span());
  return out;
}

Result<SessionConfig> decode_body(ber::BerReader& r, bool* accepted_out) {
  SessionConfig c;
  auto version = r.read_integer();
  if (!version) return version.error();
  if (*version != kVersion) return Error{ErrorCode::kUnsupported, "version"};

  auto session = r.read_integer();
  if (!session) return session.error();
  if (*session < 0 || *session > UINT16_MAX) {
    return Error{ErrorCode::kOutOfRange, "session id"};
  }
  c.session_id = static_cast<std::uint16_t>(*session);

  auto oid = r.read_oid();
  if (!oid) return oid.error();
  auto syntax = syntax_from_oid(*oid);
  if (!syntax) return Error{ErrorCode::kUnsupported, "unknown syntax OID"};
  c.syntax = *syntax;

  auto checksum = r.read_integer();
  if (!checksum) return checksum.error();
  if (*checksum < 0 || *checksum > static_cast<std::int64_t>(ChecksumKind::kCrc32)) {
    return Error{ErrorCode::kOutOfRange, "checksum kind"};
  }
  c.checksum = static_cast<ChecksumKind>(*checksum);

  auto retransmit = r.read_integer();
  if (!retransmit) return retransmit.error();
  if (*retransmit < 0 ||
      *retransmit > static_cast<std::int64_t>(RetransmitPolicy::kNone)) {
    return Error{ErrorCode::kOutOfRange, "retransmit policy"};
  }
  c.retransmit = static_cast<RetransmitPolicy>(*retransmit);

  auto process = r.read_integer();
  if (!process) return process.error();
  if (*process < 0 || *process > static_cast<std::int64_t>(ProcessMode::kLayered)) {
    return Error{ErrorCode::kOutOfRange, "process mode"};
  }
  c.process_mode = static_cast<ProcessMode>(*process);

  auto encrypt = r.read_boolean();
  if (!encrypt) return encrypt.error();
  c.encrypt = *encrypt;

  auto fec = r.read_integer();
  if (!fec) return fec.error();
  if (*fec < 0 || *fec > 255) return Error{ErrorCode::kOutOfRange, "fec_k"};
  c.fec_k = static_cast<std::uint8_t>(*fec);

  auto pace = r.read_integer();
  if (!pace) return pace.error();
  if (*pace < 0) return Error{ErrorCode::kOutOfRange, "pace"};
  c.pace_bps = static_cast<double>(*pace);

  if (accepted_out != nullptr) {
    auto accepted = r.read_boolean();
    if (!accepted) return accepted.error();
    *accepted_out = *accepted;
  }
  return c;
}

Result<ber::BerReader> open_frame(ConstBytes frame, std::uint8_t want_kind) {
  if (frame.size() < 2 || frame[0] != kHandshakeMagic) {
    return Error{ErrorCode::kMalformed, "not a handshake frame"};
  }
  if (frame[1] != want_kind) return Error{ErrorCode::kMalformed, "wrong kind"};
  ber::BerReader top(frame.subspan(2));
  return top.enter_sequence();
}

}  // namespace

ByteBuffer encode_offer(const SessionConfig& offer) {
  return encode_body(offer, std::nullopt);
}

ByteBuffer encode_answer(const SessionConfig& agreed, bool accepted) {
  return encode_body(agreed, accepted);
}

Result<OfferFrame> decode_offer(ConstBytes frame) {
  auto seq = open_frame(frame, kKindOffer);
  if (!seq) return seq.error();
  auto config = decode_body(*seq, nullptr);
  if (!config) return config.error();
  return OfferFrame{*config};
}

Result<AnswerFrame> decode_answer(ConstBytes frame) {
  auto seq = open_frame(frame, kKindAnswer);
  if (!seq) return seq.error();
  AnswerFrame out;
  auto config = decode_body(*seq, &out.accepted);
  if (!config) return config.error();
  out.config = *config;
  return out;
}

bool is_handshake_frame(ConstBytes frame) noexcept {
  return !frame.empty() && frame[0] == kHandshakeMagic;
}

// ---- Drivers ------------------------------------------------------------------------

HandshakeInitiator::HandshakeInitiator(EventLoop& loop, NetPath& tx, NetPath& rx,
                                       SessionConfig offer, SimDuration retry,
                                       int max_retries)
    : loop_(loop), tx_(tx), offer_(offer), retry_(retry), retries_left_(max_retries) {
  rx.set_handler([this](ConstBytes frame) { on_frame(frame); });
}

void HandshakeInitiator::start() {
  // A locally malformed offer fails fast, through the same single error
  // path a responder would use — never onto the wire.
  if (Status v = offer_.validate(); !v) {
    done_ = true;
    if (on_done_) on_done_(v.error());
    return;
  }
  send_offer();
}

void HandshakeInitiator::send_offer() {
  if (done_) return;
  ByteBuffer frame = encode_offer(offer_);
  tx_.send(frame.span());
  if (retries_left_-- > 0) {
    loop_.schedule_after(retry_, [this] {
      if (!done_) send_offer();
    });
  } else {
    loop_.schedule_after(retry_, [this] {
      if (done_) return;
      done_ = true;
      if (on_done_) {
        on_done_(Error{ErrorCode::kClosed, "handshake timed out"});
      }
    });
  }
}

void HandshakeInitiator::on_frame(ConstBytes frame) {
  if (done_) return;
  auto answer = decode_answer(frame);
  if (!answer) return;  // not an answer (or damaged): keep waiting
  done_ = true;
  if (!on_done_) return;
  if (!answer->accepted) {
    on_done_(Error{ErrorCode::kUnsupported, "responder refused the offer"});
  } else {
    on_done_(answer->config);
  }
}

HandshakeResponder::HandshakeResponder(EventLoop& loop, NetPath& rx, NetPath& tx,
                                       Capabilities caps)
    : tx_(tx), caps_(std::move(caps)) {
  (void)loop;
  rx.set_handler([this](ConstBytes frame) { on_frame(frame); });
}

void HandshakeResponder::on_frame(ConstBytes frame) {
  auto offer = decode_offer(frame);
  if (!offer) return;

  auto agreed = respond_to_offer(offer->config, caps_);
  if (!agreed) {
    ByteBuffer refusal = encode_answer(offer->config, /*accepted=*/false);
    tx_.send(refusal.span());
    return;
  }
  ByteBuffer answer = encode_answer(*agreed, /*accepted=*/true);
  tx_.send(answer.span());
  if (!have_session_) {
    have_session_ = true;
    agreed_ = *agreed;
    if (on_session_) on_session_(agreed_);
  }
}

}  // namespace ngp::alf
