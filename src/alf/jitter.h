// jitter.h — inter-arrival jitter estimation and playout-delay selection.
//
// §3 of the paper lists timestamping among the transfer-control functions:
// "some real-time protocols rely on packet timestamps to support the
// regeneration of inter-packet timing." This module regenerates that
// timing: JitterEstimator is the interarrival-jitter filter that ALF's
// direct descendant RTP standardized (RFC 3550 §6.4.1 form,
// J += (|D| - J) / 16), and PlayoutClock turns the estimate into a playout
// delay for deadline-driven sinks like VideoSink.
#pragma once

#include <cstdint>
#include <cstdlib>

#include "util/sim_clock.h"

namespace ngp::alf {

/// Smoothed interarrival jitter over (arrival time, media timestamp) pairs.
class JitterEstimator {
 public:
  /// Feeds one ADU arrival. `media_time` is the sender's timestamp for the
  /// ADU (its place in the stream's time base); `arrival` is local time.
  void on_arrival(SimTime arrival, SimDuration media_time) noexcept {
    if (have_prev_) {
      // D = (arrival_i - arrival_j) - (media_i - media_j): transit
      // difference between consecutive ADUs.
      const SimDuration d =
          (arrival - prev_arrival_) - (media_time - prev_media_);
      const SimDuration ad = d < 0 ? -d : d;
      // J += (|D| - J) / 16, RFC 3550's noise-resistant filter.
      jitter_ += (ad - jitter_) / 16;
      ++samples_;
    }
    prev_arrival_ = arrival;
    prev_media_ = media_time;
    have_prev_ = true;
  }

  /// Current smoothed jitter estimate.
  SimDuration jitter() const noexcept { return jitter_; }
  std::uint64_t samples() const noexcept { return samples_; }

  void reset() noexcept { *this = JitterEstimator{}; }

 private:
  bool have_prev_ = false;
  SimTime prev_arrival_ = 0;
  SimDuration prev_media_ = 0;
  SimDuration jitter_ = 0;
  std::uint64_t samples_ = 0;
};

/// Maps media timestamps to local playout deadlines with a safety margin
/// of `k` jitter estimates (classic adaptive playout rule).
class PlayoutClock {
 public:
  /// `base_delay` is the minimum buffering; `jitter_multiplier` scales the
  /// adaptive component (4 is the conventional choice).
  explicit PlayoutClock(SimDuration base_delay, int jitter_multiplier = 4) noexcept
      : base_delay_(base_delay), k_(jitter_multiplier) {}

  /// Feeds an arrival (updates the jitter estimate and, on the first
  /// sample, anchors the media clock to local time).
  void on_arrival(SimTime arrival, SimDuration media_time) noexcept {
    if (!anchored_) {
      anchor_local_ = arrival;
      anchor_media_ = media_time;
      anchored_ = true;
    }
    estimator_.on_arrival(arrival, media_time);
  }

  /// Local deadline for the ADU carrying `media_time`.
  SimTime playout_deadline(SimDuration media_time) const noexcept {
    return anchor_local_ + (media_time - anchor_media_) + current_delay();
  }

  /// Current total playout delay (base + k * jitter).
  SimDuration current_delay() const noexcept {
    return base_delay_ + static_cast<SimDuration>(k_) * estimator_.jitter();
  }

  const JitterEstimator& estimator() const noexcept { return estimator_; }
  bool anchored() const noexcept { return anchored_; }

 private:
  SimDuration base_delay_;
  int k_;
  bool anchored_ = false;
  SimTime anchor_local_ = 0;
  SimDuration anchor_media_ = 0;
  JitterEstimator estimator_;
};

}  // namespace ngp::alf
