#include "alf/receiver.h"

#include <algorithm>
#include <cstring>

#include "alf/fec.h"
#include "buf/ingress.h"
#include "engine/engine.h"
#include "ilp/engine.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "presentation/plan.h"
#include "simd/dispatch.h"

namespace ngp::alf {

AlfReceiver::AlfReceiver(EventLoop& loop, NetPath& data_in, NetPath& feedback_out,
                         SessionConfig config)
    : AlfReceiver(loop, &data_in, feedback_out, config) {}

AlfReceiver::AlfReceiver(EventLoop& loop, NetPath* data_in, NetPath& feedback_out,
                         SessionConfig config)
    : loop_(loop), feedback_out_(feedback_out), cfg_(config),
      jitter_rng_(config.recovery_seed != 0
                      ? config.recovery_seed
                      : 0x6E677052ull ^ (std::uint64_t{config.session_id} << 8)) {
  // Demux-fed receivers (sessiond) own no ingress path: frames reach them
  // through handle_frame() only.
  if (data_in != nullptr) {
    data_in_ = data_in;
    data_in->set_handler([this](ConstBytes frame) { on_frame(frame); });
  }
  // Out-of-band control cadence: the NACK scan and progress report run on
  // their own timers, decoupled from per-fragment processing (§3). They
  // arm lazily, on first activity (arm_timers), and stand down when idle.
}

AlfReceiver::~AlfReceiver() {
  // The ingress handler installed by the ctor closes over `this`: clear it
  // so frames delivered after teardown drop instead of calling into freed
  // memory.
  if (data_in_ != nullptr) data_in_->set_handler(nullptr);
  // Jobs still on the engine hold completion callbacks into this object:
  // settle them (on this, the control thread) before the members they
  // touch are destroyed.
  if (eng_ != nullptr && !manip_inflight_.empty()) eng_->wait_all();
  // A receiver destroyed mid-session (supervised restart) must leave no
  // timer that would call into freed memory — and teardown is not a
  // failure, so on_session_failed must NOT fire from here.
  cancel_timers();
}

void AlfReceiver::cancel_timers() {
  if (nack_timer_ != 0) loop_.cancel(nack_timer_);
  if (progress_timer_ != 0) loop_.cancel(progress_timer_);
  if (engine_pump_timer_ != 0) loop_.cancel(engine_pump_timer_);
  if (watchdog_timer_ != 0) loop_.cancel(watchdog_timer_);
  nack_timer_ = progress_timer_ = engine_pump_timer_ = watchdog_timer_ = 0;
  nack_timer_armed_ = progress_timer_armed_ = watchdog_armed_ = false;
  engine_pump_armed_ = false;
}

void AlfReceiver::arm_timers() {
  if (cfg_.retransmit != RetransmitPolicy::kNone && !nack_timer_armed_ &&
      !complete_fired_ && !failed_) {
    nack_timer_armed_ = true;
    nack_timer_ = loop_.schedule_after(cfg_.nack_delay, [this] {
      nack_timer_ = 0;
      nack_scan();
    });
  }
  if (!progress_timer_armed_ && !complete_fired_ && !failed_) {
    progress_timer_armed_ = true;
    progress_timer_ = loop_.schedule_after(cfg_.progress_interval, [this] {
      progress_timer_ = 0;
      send_progress();
    });
  }
  if (cfg_.stall_timeout > 0 && !watchdog_armed_ && !complete_fired_ && !failed_) {
    watchdog_armed_ = true;
    last_progress_mark_ = loop_.now();
    watchdog_timer_ =
        loop_.schedule_after(cfg_.stall_timeout, [this] { watchdog_tick(); });
  }
}

void AlfReceiver::watchdog_tick() {
  watchdog_timer_ = 0;
  if (complete_fired_ || failed_) {
    watchdog_armed_ = false;
    return;
  }
  const SimDuration idle = loop_.now() - last_progress_mark_;
  if (idle >= cfg_.stall_timeout) {
    watchdog_armed_ = false;
    fail_session();
    return;
  }
  watchdog_timer_ = loop_.schedule_after(cfg_.stall_timeout - idle,
                                         [this] { watchdog_tick(); });
}

void AlfReceiver::fail_session() {
  if (failed_) return;  // terminal failure is a one-shot verdict
  failed_ = true;
  ++stats_.watchdog_fired;
  obs::flight_record(flight_, flight_track_, obs::FlightStage::kSessionFail,
                     /*trace_id=*/0, /*arg=*/cfg_.session_id);
  // Release everything: a failed session must hold no memory and schedule
  // no further work. Ids are not individually reported — the session-level
  // failure supersedes per-ADU loss reporting. Note what is NOT cleared:
  // closed_/closed_prefix_/counts — resume_summary() reads them so a
  // supervisor can rebuild on what already completed (DESIGN.md §10).
  pending_.clear();
  reassembly_bytes_ = 0;
  nack_counts_.clear();
  // In-flight engine jobs are orphaned: their completions will still be
  // harvested (the cost was genuinely paid) but deliver nothing.
  manip_inflight_.clear();
  cancel_timers();
  if (on_session_failed_) on_session_failed_();
}

ResumeSummary AlfReceiver::resume_summary() const {
  ResumeSummary s;
  s.closed_prefix = closed_prefix_;
  s.closed_above.assign(closed_.begin(), closed_.end());
  s.delivered = delivered_count_;
  s.abandoned = abandoned_count_;
  s.highest_seen = highest_seen_;
  s.expected_total = expected_total_;
  return s;
}

void AlfReceiver::restore(const ResumeSummary& s) {
  closed_prefix_ = s.closed_prefix;
  closed_.clear();
  closed_.insert(s.closed_above.begin(), s.closed_above.end());
  delivered_count_ = s.delivered;
  abandoned_count_ = s.abandoned;
  highest_seen_ = s.highest_seen;
  expected_total_ = s.expected_total;
  // Deliberately no arm_timers(): a restored receiver must not burn its
  // NACK budget (or trip its watchdog) while the sender has not resumed
  // yet; the first new-epoch frame arms everything. But if the
  // predecessor had already closed every expected ADU, complete now.
  check_complete();
}

void AlfReceiver::on_frame(ConstBytes frame) {
  if (failed_) return;  // abandoned sessions ignore the substrate
  auto msg = decode_message(frame);
  if (!msg) {
    ++stats_.fragments_corrupt;
    return;
  }
  switch (msg->type) {
    case MessageType::kData:
      if (msg->data.session == cfg_.session_id) on_data(msg->data);
      break;
    case MessageType::kDone:
      if (msg->done.session == cfg_.session_id) on_done(msg->done);
      break;
    default:
      break;  // NACK/PROGRESS are sender-bound; ignore here
  }
}

void AlfReceiver::on_data(const DataFragment& f) {
  ++stats_.fragments_received;

  // Epoch guard (DESIGN.md §10): fragments stamped by another incarnation
  // of this session are stale — frames in flight across a supervised
  // restart must not pollute the new epoch's reassembly state.
  if (f.epoch != cfg_.epoch) {
    ++stats_.fragments_stale_epoch;
    return;
  }

  // Hostile-substrate validation BEFORE any resource is committed: the
  // header's claims are attacker-controlled until the ADU checksum has
  // spoken, so a claimed length or id outside the session's bounds is
  // treated exactly like header damage.
  if (f.adu_len > cfg_.max_adu_len) {
    ++stats_.fragments_corrupt;
    ++stats_.fragments_oversized;
    return;
  }
  if (cfg_.adu_id_window > 0 &&
      std::uint64_t{f.adu_id} > std::uint64_t{closed_prefix_} + cfg_.adu_id_window) {
    ++stats_.fragments_corrupt;
    ++stats_.fragments_out_of_window;
    return;
  }

  highest_seen_ = std::max(highest_seen_, f.adu_id);
  arm_timers();

  // Liveness, not novelty: any validated current-epoch fragment proves the
  // path and the peer are alive, so it resets the stall watchdog even when
  // every byte is redundant. Recovery traffic is full of duplicates (a
  // re-staged burst racing its own NACK retransmissions); failing a session
  // that is audibly talking would turn one restart into a restart storm.
  // Silence — not redundancy — is the failure signal.
  note_progress();

  if (is_closed(f.adu_id)) {
    ++stats_.fragments_for_done_adus;  // late duplicate of a finished ADU
    return;
  }
  if (manip_inflight_.contains(f.adu_id)) {
    // Complete and being verified on the engine right now; any fragment
    // arriving meanwhile is redundant by definition.
    ++stats_.fragments_for_done_adus;
    return;
  }

  auto [it, inserted] = pending_.try_emplace(f.adu_id);
  Reassembly& r = it->second;
  if (inserted) {
    if (!reserve_bytes(f.adu_id, f.adu_len)) {
      pending_.erase(it);
      ++stats_.fragments_dropped_mem;
      return;
    }
    r.name = f.name;
    r.syntax = f.syntax;
    r.flags = static_cast<std::uint8_t>(f.flags & ~kFlagFecParity);
    r.checksum_kind = f.checksum_kind;
    r.fec_k = f.fec_k;
    r.adu_len = f.adu_len;
    r.checksum = f.adu_checksum;
    // Zero-copy opt-in is decided per ADU at first sight: only the
    // Internet checksum folds across a gather list (ones-complement sums
    // combine), so other checksum kinds keep the flat buffer.
    r.pooled = rx_pool_ != nullptr && f.checksum_kind == ChecksumKind::kInternet;
    if (!r.pooled) r.buf.resize(f.adu_len);
    r.charged_bytes = f.adu_len;
  } else if (f.adu_len != r.adu_len) {
    return;  // inconsistent metadata: ignore the stray fragment
  }

  // Fragments reveal the sender's fragment capacity, which FEC group
  // geometry depends on: every fragment except an ADU's last is exactly
  // capacity-sized (and so is a non-final group's parity block). A short
  // *final* fragment says nothing about capacity unless it is the ADU's
  // only fragment.
  const std::size_t unit_end = f.frag_off + f.payload.size();
  if (unit_end < f.adu_len) {
    r.frag_capacity = std::max(r.frag_capacity, f.payload.size());
  } else if (f.frag_off == 0 && unit_end == f.adu_len) {
    r.frag_capacity = std::max(r.frag_capacity, f.payload.size());
  }

  if (f.is_parity()) {
    // FEC parity: keep the block keyed by its group start; it is not ADU
    // data, so the range map is untouched. Parity blocks are memory too —
    // charged against the same reassembly budget.
    if (!r.parity.contains(f.frag_off)) {
      if (!reserve_bytes(f.adu_id, f.payload.size())) {
        ++stats_.fragments_dropped_mem;
        return;
      }
      r.parity.emplace(f.frag_off, ByteBuffer(f.payload));
      r.charged_bytes += f.payload.size();
    } else {
      ++stats_.fragments_duplicate;
    }
    (void)try_fec_reconstruct(f.adu_id, r);
    return;
  }

  // Stage 1 placement: copy the fragment to its offset (the one
  // unavoidable move — "moving to/from the net", §3). Range bookkeeping
  // detects what is genuinely new. A pooled ADU places by REFERENCE when
  // the payload already sits in a pool segment — that placement charges
  // nothing, which is the whole point.
  const std::uint32_t start = f.frag_off;
  const std::uint32_t end = start + static_cast<std::uint32_t>(f.payload.size());
  if (r.pooled) {
    place_pooled(r, f.payload, start, end);
  } else {
    simd::kernels().copy(f.payload, r.buf.span().subspan(start, f.payload.size()));
    reassembly_cost_.charge_fused(f.payload.size());
  }
  obs::flight_record(flight_, flight_track_, obs::FlightStage::kFragRx,
                     flight_id(f.adu_id), f.payload.size());
  if (!merge_range(r, start, end)) {
    ++stats_.fragments_duplicate;
  }

  if (r.bytes_received == r.adu_len) {
    complete_adu(f.adu_id, r);
    shed_for_overload(0);
    return;
  }
  if (try_fec_reconstruct(f.adu_id, r)) {
    shed_for_overload(0);
    return;
  }
  // Admission policy: the newly charged bytes may have pushed reassembly
  // memory over the high-water mark — shed the least important incomplete
  // ADUs (not this one) rather than letting the hard limit evict blindly.
  shed_for_overload(f.adu_id);
}

bool AlfReceiver::merge_range(Reassembly& r, std::uint32_t start, std::uint32_t end) {
  std::uint32_t new_start = start, new_end = end;
  auto next = r.ranges.lower_bound(start);
  if (next != r.ranges.begin()) {
    auto prev = std::prev(next);
    if (prev->second >= start) {  // overlaps/abuts on the left
      new_start = prev->first;
      new_end = std::max(new_end, prev->second);
      next = r.ranges.erase(prev);
    }
  }
  while (next != r.ranges.end() && next->first <= new_end) {
    new_end = std::max(new_end, next->second);
    next = r.ranges.erase(next);
  }
  const std::size_t covered_before = r.bytes_received;
  r.ranges.emplace(new_start, new_end);
  std::size_t covered = 0;
  for (const auto& [s, e] : r.ranges) covered += e - s;
  r.bytes_received = covered;
  return covered != covered_before;
}

bool AlfReceiver::range_present(const Reassembly& r, std::uint32_t start,
                                std::uint32_t end) const {
  if (start >= end) return true;
  auto it = r.ranges.upper_bound(start);
  if (it == r.ranges.begin()) return false;
  --it;
  return it->first <= start && it->second >= end;
}

bool AlfReceiver::try_fec_reconstruct(std::uint32_t adu_id, Reassembly& r) {
  if (r.fec_k == 0 || r.parity.empty() || r.frag_capacity == 0) return false;

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const auto& [group_start, block] : r.parity) {
      const FecGroup group{group_start, r.fec_k, r.frag_capacity, r.adu_len};
      // Find the missing fragments of this group.
      std::optional<std::size_t> missing;
      bool more_than_one = false;
      for (std::size_t i = 0; i < group.fragment_count(); ++i) {
        const auto s = static_cast<std::uint32_t>(group.fragment_offset(i));
        const auto e = static_cast<std::uint32_t>(s + group.fragment_length(i));
        if (!range_present(r, s, e)) {
          if (missing) {
            more_than_one = true;
            break;
          }
          missing = i;
        }
      }
      if (more_than_one || !missing) continue;

      // Reconstruct directly into the fragment's slot in the reassembly
      // buffer: no staging allocation, no second copy. The surviving
      // fragments' slots are disjoint from the missing one, so in-place is
      // safe. Charge the XOR traffic to the stage-1 ledger: one loading
      // pass per surviving source, one storing pass over the recovered slot.
      const auto s = static_cast<std::uint32_t>(group.fragment_offset(*missing));
      const std::size_t frag_len = group.fragment_length(*missing);
      if (r.pooled) {
        // Chain FEC: recover the missing fragment into a fresh pool slice
        // and link it like any other arrival — the ADU never flattens. The
        // surviving fragments are read in place (scratch only when one
        // straddles a slice boundary).
        buf::Slice out{rx_pool_->alloc(frag_len), 0, frag_len};
        simd::kernels().copy(block.span().first(frag_len), out.mutable_bytes());
        ByteBuffer scratch(r.frag_capacity);
        for (std::size_t i = 0; i < group.fragment_count(); ++i) {
          if (i == *missing) continue;
          const std::size_t take = std::min(group.fragment_length(i), frag_len);
          ConstBytes src;
          if (read_pooled(r, static_cast<std::uint32_t>(group.fragment_offset(i)),
                          take, scratch.span(), src)) {
            xor_into(out.mutable_bytes(), src);
          }
        }
        r.frags.emplace(s, std::move(out));
      } else {
        reconstruct_fragment_into(r.buf.span(), block.span(), group, *missing,
                                  r.buf.span().subspan(s, frag_len));
      }
      reassembly_cost_.charge_operation(frag_len);
      reassembly_cost_.charge_pass(frag_len, /*stores=*/false);  // parity prefix
      for (std::size_t i = 0; i < group.fragment_count(); ++i) {
        if (i == *missing) continue;
        reassembly_cost_.charge_pass(std::min(group.fragment_length(i), frag_len),
                                     /*stores=*/false);
      }
      reassembly_cost_.charge_pass(frag_len, /*stores=*/true);
      merge_range(r, s, s + static_cast<std::uint32_t>(frag_len));
      ++stats_.fragments_fec_reconstructed;
      progressed = true;
      break;  // parity map unchanged but ranges changed: rescan
    }
  }

  if (r.bytes_received == r.adu_len) {
    complete_adu(adu_id, r);
    return true;
  }
  return false;
}

void AlfReceiver::place_pooled(Reassembly& r, ConstBytes payload,
                               std::uint32_t start, std::uint32_t end) {
  // The link published the frame's backing segment for the duration of
  // this handler call; if the payload sits inside it, every new byte is
  // placed by taking a sub-slice reference — zero copies, zero charges.
  // Payloads from elsewhere (a re-framed path, a corrupted-copy replay)
  // fall back to ONE copy into a pool segment, same charge as the flat
  // path's placement.
  const buf::Slice* ing = buf::IngressFrame::current();
  const bool by_ref = ing != nullptr && ing->ref.contains(payload);
  bool placed = false;

  // Walk the not-yet-covered gaps of [start, end): only genuinely new
  // bytes take a slice — a duplicate must neither hold an extra segment
  // reference nor shadow bytes already placed.
  std::uint32_t pos = start;
  auto it = r.ranges.upper_bound(start);
  if (it != r.ranges.begin() && std::prev(it)->second > start) {
    pos = static_cast<std::uint32_t>(std::min<std::uint64_t>(end, std::prev(it)->second));
  }
  while (pos < end) {
    const std::uint32_t gap_end =
        it != r.ranges.end() ? std::min(end, it->first) : end;
    if (pos < gap_end) {
      ConstBytes piece = payload.subspan(pos - start, gap_end - pos);
      if (by_ref) {
        const auto at = static_cast<std::size_t>(
            piece.data() - (ing->ref.data() + ing->off));
        r.frags.emplace(pos, ing->sub(at, piece.size()));
      } else {
        buf::Slice s{rx_pool_->alloc(piece.size()), 0, piece.size()};
        simd::kernels().copy(piece, s.mutable_bytes());
        reassembly_cost_.charge_fused(piece.size());
        r.frags.emplace(pos, std::move(s));
      }
      placed = true;
    }
    if (it == r.ranges.end()) break;
    pos = std::max(pos, std::min(end, it->second));
    ++it;
  }
  if (placed) {
    if (by_ref) ++stats_.fragments_zero_copy;
    else ++stats_.fragments_pool_copied;
  }
}

bool AlfReceiver::read_pooled(const Reassembly& r, std::uint32_t start,
                              std::size_t len, MutableBytes scratch,
                              ConstBytes& out) const {
  if (len == 0) {
    out = ConstBytes{};
    return true;
  }
  // Fast path: the whole range inside one slice — alias it directly.
  auto it = r.frags.upper_bound(start);
  if (it == r.frags.begin()) return false;
  --it;
  const std::size_t rel = start - it->first;
  if (rel < it->second.len && it->second.len - rel >= len) {
    out = it->second.bytes().subspan(rel, len);
    return true;
  }
  // Gather path: the range straddles slices; stitch it into scratch.
  std::size_t done = 0;
  while (done < len) {
    auto jt = r.frags.upper_bound(static_cast<std::uint32_t>(start + done));
    if (jt == r.frags.begin()) return false;
    --jt;
    const std::size_t at = (start + done) - jt->first;
    if (at >= jt->second.len) return false;  // hole
    const std::size_t take = std::min(len - done, jt->second.len - at);
    simd::kernels().copy(jt->second.bytes().subspan(at, take),
                         scratch.subspan(done, take));
    done += take;
  }
  out = ConstBytes{scratch.data(), len};
  return true;
}

buf::BufChain AlfReceiver::build_chain(Reassembly& r) {
  // Complete coverage with disjoint slices: ascending key order IS the
  // ADU's byte order. Moving the slices transfers their references.
  buf::BufChain chain;
  for (auto& [off, slice] : r.frags) chain.append(std::move(slice));
  r.frags.clear();
  return chain;
}

void AlfReceiver::note_recycle(std::uint32_t adu_id, std::size_t bytes) {
  obs::flight_record(flight_, flight_track_, obs::FlightStage::kBufRecycle,
                     flight_id(adu_id), bytes);
}

void AlfReceiver::set_flight(obs::FlightRecorder* flight) {
  flight_ = flight;
  if (flight_ != nullptr) flight_track_ = flight_->add_track("alf.rx");
}

std::uint64_t AlfReceiver::flight_id(std::uint32_t adu_id) const noexcept {
  return obs::flight_trace_id(cfg_.session_id, adu_id);
}

ManipulationPlan AlfReceiver::make_plan(std::uint32_t adu_id,
                                        const Reassembly& r) const {
  ManipulationPlan p;
  p.layered = cfg_.process_mode == ProcessMode::kLayered;
  p.decrypt = (r.flags & kFlagEncrypted) != 0;
  p.key = cfg_.key;
  store_u32_be(p.key.nonce.data() + 8, adu_id);  // per-ADU nonce (§5)
  p.checksum_kind = r.checksum_kind;
  p.expected_checksum = r.checksum;
  // Fused presentation (DESIGN.md §13): when a compiled plan for this wire
  // syntax is attached, its wire stage (identity or byteswap32) rides the
  // same stage-2 pass — the delivered payload is already host order and no
  // separate decode pass remains.
  if (present_plan_ != nullptr && r.syntax == present_plan_->syntax) {
    p.present = present_plan_->wire_stage();
  }
  return p;
}

bool AlfReceiver::verify_and_decrypt(std::uint32_t adu_id, Reassembly& r) {
  // ILP stage 2: decrypt and integrity-check in ONE pass over the ADU
  // (kIntegrated), or one full pass per manipulation (kLayered). The shared
  // executor charges manip_cost_ — this is where the live pipeline's
  // fused-vs-layered pass counts come from.
  obs::TraceSpan span(trace_, "alf.rx.manip", r.buf.size());
  obs::flight_record(flight_, flight_track_, obs::FlightStage::kManipBegin,
                     flight_id(adu_id), r.buf.size());
  const ManipulationPlan plan = make_plan(adu_id, r);
  if (plan.present != PresentStage::kNone) ++stats_.adus_presentation_fused;
  const bool intact = run_manipulation(plan, r.buf.span(), &manip_cost_);
  obs::flight_record(flight_, flight_track_, obs::FlightStage::kManipEnd,
                     flight_id(adu_id), r.buf.size());
  return intact;
}

bool AlfReceiver::verify_and_decrypt_chain(std::uint32_t adu_id,
                                           const Reassembly& r,
                                           buf::BufChain& chain) {
  // Same stage-2 recipe over the gather list: fused checksum folds across
  // the slices (load-only when nothing decrypts — no flat staging buffer
  // exists to store into, and that missing store pass is the saving).
  obs::TraceSpan span(trace_, "alf.rx.manip", chain.size());
  obs::flight_record(flight_, flight_track_, obs::FlightStage::kManipBegin,
                     flight_id(adu_id), chain.size());
  const ManipulationPlan plan = make_plan(adu_id, r);
  if (plan.present != PresentStage::kNone) ++stats_.adus_presentation_fused;
  const bool intact = run_manipulation_chain(plan, chain, &manip_cost_);
  obs::flight_record(flight_, flight_track_, obs::FlightStage::kManipEnd,
                     flight_id(adu_id), chain.size());
  return intact;
}

void AlfReceiver::complete_adu(std::uint32_t adu_id, Reassembly& r) {
  obs::flight_record(flight_, flight_track_, obs::FlightStage::kAduComplete,
                     flight_id(adu_id), r.adu_len);
  if (eng_ != nullptr) {
    offload_adu(adu_id, r);
    return;
  }
  if (r.pooled) {
    buf::BufChain chain = build_chain(r);
    if (!verify_and_decrypt_chain(adu_id, r, chain)) {
      // Same recovery as the flat path: discard (releasing the segments)
      // and leave the id open for the NACK scan.
      ++stats_.adus_checksum_failed;
      note_recycle(adu_id, chain.size());
      release_pending(pending_.find(adu_id));
      return;
    }
    auto pit = pending_.find(adu_id);
    reassembly_bytes_ -= std::min(reassembly_bytes_, pit->second.charged_bytes);
    auto node = pending_.extract(pit);
    deliver_chain(adu_id, node.mapped().name, node.mapped().syntax,
                  std::move(chain));
    return;
  }
  if (!verify_and_decrypt(adu_id, r)) {
    // Whole-ADU integrity failure: discard the damaged bytes and let the
    // recovery machinery re-fetch it — the ADU is the unit of error
    // recovery (§5). The id stays open, so the NACK scan re-requests it.
    ++stats_.adus_checksum_failed;
    release_pending(pending_.find(adu_id));
    return;
  }
  auto it = pending_.find(adu_id);
  reassembly_bytes_ -= std::min(reassembly_bytes_, it->second.charged_bytes);
  auto node = pending_.extract(it);
  deliver(adu_id, std::move(node.mapped()));
}

void AlfReceiver::offload_adu(std::uint32_t adu_id, Reassembly& r) {
  // Engine-backlog pressure valve (DESIGN.md §10.3): when stage-2 jobs
  // pile up faster than they harvest, each further offload sheds one
  // lowest-priority incomplete ADU — the pipeline keeps moving and the
  // application hears about the casualties by name.
  if (cfg_.engine_shed_highwater > 0 &&
      manip_inflight_.size() >= cfg_.engine_shed_highwater) {
    (void)shed_one(adu_id);
  }
  // Control keeps only what delivery needs (§5: the name addresses the
  // ADU); the bytes travel with the job. The reassembly charge is released
  // now — the job owns the buffer, not the reassembly pool.
  manip_inflight_.emplace(adu_id, InflightManip{r.name, r.syntax});
  ++stats_.adus_engine_offloaded;
  if (trace_ != nullptr) trace_->instant("alf.rx.engine.submit", r.adu_len);
  obs::flight_record(flight_, flight_track_, obs::FlightStage::kEngineSubmit,
                     flight_id(adu_id), r.adu_len);

  engine::ManipulationJob job;
  job.adu_id = adu_id;
  // Flow+adu worker sharding: an engine shared across many sessions
  // (sessiond) spreads distinct flows over its workers while this flow's
  // equal-id jobs still land on one FIFO lane.
  job.shard_key = obs::flight_trace_id(cfg_.session_id, adu_id);
  job.flight_id = flight_id(adu_id);
  job.plan = make_plan(adu_id, r);
  if (job.plan.present != PresentStage::kNone) ++stats_.adus_presentation_fused;
  if (r.pooled) {
    // The chain travels to the worker; its last release — wherever that
    // happens — recycles the segments (the pool is thread-safe for this).
    job.chain = build_chain(r);
    job.on_done_chain = [this, adu_id](bool intact, buf::BufChain&& chain,
                                       const obs::CostAccount& cost) {
      on_manip_done_chain(adu_id, intact, std::move(chain), cost);
    };
  } else {
    job.payload = std::move(r.buf);
    job.on_done = [this, adu_id](bool intact, ByteBuffer&& payload,
                                 const obs::CostAccount& cost) {
      on_manip_done(adu_id, intact, std::move(payload), cost);
    };
  }
  release_pending(pending_.find(adu_id));
  eng_->submit(std::move(job));
  arm_engine_pump();
}

void AlfReceiver::arm_engine_pump() {
  if (engine_pump_armed_) return;
  engine_pump_armed_ = true;
  engine_pump_timer_ = loop_.schedule_after(engine_harvest_delay_, [this] {
    engine_pump_timer_ = 0;
    engine_pump();
  });
}

void AlfReceiver::engine_pump() {
  engine_pump_armed_ = false;
  if (eng_ == nullptr) return;
  // drain() blocks for at least one completion when none is ready yet:
  // simulated time only advances past the harvest point once real work has
  // actually finished, keeping the event loop's causality intact.
  eng_->drain();
  if (!manip_inflight_.empty()) arm_engine_pump();
}

void AlfReceiver::on_manip_done(std::uint32_t adu_id, bool intact,
                                ByteBuffer&& payload,
                                const obs::CostAccount& cost) {
  // The worker charged its private ledger; merge is commutative, so the
  // session ledger is identical whatever order completions arrive in.
  manip_cost_.merge(cost);
  obs::flight_record(flight_, flight_track_, obs::FlightStage::kHarvest,
                     flight_id(adu_id), payload.size());
  auto it = manip_inflight_.find(adu_id);
  if (it == manip_inflight_.end()) return;  // session failed meanwhile
  InflightManip meta = std::move(it->second);
  manip_inflight_.erase(it);
  if (failed_) return;
  if (!intact) {
    // Same outcome as the inline path: damaged bytes are discarded and the
    // id stays open, so the NACK scan re-fetches the whole ADU (§5).
    ++stats_.adus_checksum_failed;
    note_progress();
    arm_timers();
    return;
  }
  deliver_payload(adu_id, meta.name, meta.syntax, std::move(payload));
}

void AlfReceiver::on_manip_done_chain(std::uint32_t adu_id, bool intact,
                                      buf::BufChain&& chain,
                                      const obs::CostAccount& cost) {
  manip_cost_.merge(cost);
  obs::flight_record(flight_, flight_track_, obs::FlightStage::kHarvest,
                     flight_id(adu_id), chain.size());
  auto it = manip_inflight_.find(adu_id);
  if (it == manip_inflight_.end()) return;  // session failed meanwhile
  InflightManip meta = std::move(it->second);
  manip_inflight_.erase(it);
  if (failed_) return;
  if (!intact) {
    // Discard the damaged chain (segments recycle) and leave the id open
    // for the NACK scan, exactly like the flat engine path.
    ++stats_.adus_checksum_failed;
    note_recycle(adu_id, chain.size());
    note_progress();
    arm_timers();
    return;
  }
  deliver_chain(adu_id, meta.name, meta.syntax, std::move(chain));
}

void AlfReceiver::deliver(std::uint32_t adu_id, Reassembly&& r) {
  deliver_payload(adu_id, r.name, r.syntax, std::move(r.buf));
}

void AlfReceiver::deliver_payload(std::uint32_t adu_id, const AduName& name,
                                  TransferSyntax syntax, ByteBuffer&& payload) {
  // Out of order w.r.t. the id sequence? (Any earlier id still open.)
  // closed_prefix_ = ids 1..closed_prefix_ are all closed already.
  const bool earlier_open = adu_id > closed_prefix_ + 1;
  obs::flight_record(flight_, flight_track_, obs::FlightStage::kDeliver,
                     flight_id(adu_id), payload.size());
  close_id(adu_id);
  ++delivered_count_;
  ++stats_.adus_delivered;
  stats_.payload_bytes_delivered += payload.size();
  if (earlier_open) ++stats_.adus_delivered_out_of_order;

  if (on_adu_) {
    Adu adu;
    adu.name = name;
    adu.syntax = syntax;
    adu.payload = std::move(payload);
    on_adu_(std::move(adu));
  }
  check_complete();
}

void AlfReceiver::deliver_chain(std::uint32_t adu_id, const AduName& name,
                                TransferSyntax syntax, buf::BufChain&& chain) {
  const bool earlier_open = adu_id > closed_prefix_ + 1;
  obs::flight_record(flight_, flight_track_, obs::FlightStage::kDeliver,
                     flight_id(adu_id), chain.size());
  close_id(adu_id);
  ++delivered_count_;
  ++stats_.adus_delivered;
  stats_.payload_bytes_delivered += chain.size();
  if (earlier_open) ++stats_.adus_delivered_out_of_order;

  if (on_adu_chain_) {
    ++stats_.adus_chain_delivered;
    AduChain adu;
    adu.name = name;
    adu.syntax = syntax;
    adu.payload = std::move(chain);
    on_adu_chain_(std::move(adu));
  } else if (on_adu_) {
    // Flatten bridge: only a flat consumer is registered, so final
    // placement happens here — ONE load+store pass, the single copy §4
    // always grants the receive path. The chain's segments recycle now.
    const std::size_t n = chain.size();
    Adu adu;
    adu.name = name;
    adu.syntax = syntax;
    adu.payload = chain.flatten();
    reassembly_cost_.charge_fused(n);
    note_recycle(adu_id, n);
    chain.clear();
    on_adu_(std::move(adu));
  } else {
    note_recycle(adu_id, chain.size());
  }
  check_complete();
}

void AlfReceiver::close_id(std::uint32_t adu_id) {
  nack_counts_.erase(adu_id);  // bookkeeping for closed ids is dead weight
  closed_.insert(adu_id);
  while (closed_.contains(closed_prefix_ + 1)) {
    ++closed_prefix_;
    closed_.erase(closed_prefix_);  // the prefix representation covers it
  }
  note_progress();
}

void AlfReceiver::abandon(std::uint32_t adu_id, const Reassembly* r) {
  obs::flight_record(flight_, flight_track_, obs::FlightStage::kAbandon,
                     flight_id(adu_id), 0);
  close_id(adu_id);
  ++abandoned_count_;
  ++stats_.adus_abandoned;
  if (on_adu_lost_) {
    if (r != nullptr) {
      on_adu_lost_(adu_id, r->name, /*name_known=*/true);
    } else {
      on_adu_lost_(adu_id, generic_name(adu_id), /*name_known=*/false);
    }
  }
  release_pending(pending_.find(adu_id));
  check_complete();
}

void AlfReceiver::release_pending(std::map<std::uint32_t, Reassembly>::iterator it) {
  if (it == pending_.end()) return;
  if (it->second.pooled && !it->second.frags.empty()) {
    // The erase below drops the last references to this ADU's slices:
    // note the recycle here, on the control thread, so flight timelines
    // stay deterministic (the pool itself never records events).
    std::size_t held = 0;
    for (const auto& [off, s] : it->second.frags) held += s.len;
    note_recycle(it->first, held);
  }
  reassembly_bytes_ -= std::min(reassembly_bytes_, it->second.charged_bytes);
  pending_.erase(it);
}

std::map<std::uint32_t, AlfReceiver::Reassembly>::iterator
AlfReceiver::pick_shed_victim(std::uint32_t protect_id) {
  // Lowest priority first (ALF: the application ranked its names); ties go
  // to the ADU with the least reassembly progress (cheapest loss), then to
  // the youngest id — all deterministic, so seeded runs shed identically.
  auto best = pending_.end();
  int best_pri = 0;
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->first == protect_id) continue;
    if (it->second.bytes_received >= it->second.adu_len) continue;  // completing
    const int pri = priority_ ? priority_(it->second.name) : 0;
    if (best == pending_.end() || pri < best_pri ||
        (pri == best_pri &&
         (it->second.bytes_received < best->second.bytes_received ||
          (it->second.bytes_received == best->second.bytes_received &&
           it->first > best->first)))) {
      best = it;
      best_pri = pri;
    }
  }
  return best;
}

void AlfReceiver::shed(std::map<std::uint32_t, Reassembly>::iterator it) {
  const std::uint32_t adu_id = it->first;
  ++stats_.adus_shed;
  obs::flight_record(flight_, flight_track_, obs::FlightStage::kShed,
                     flight_id(adu_id), it->second.bytes_received);
  close_id(adu_id);
  ++abandoned_count_;
  if (on_adu_lost_) on_adu_lost_(adu_id, it->second.name, /*name_known=*/true);
  release_pending(it);
  check_complete();
}

bool AlfReceiver::shed_one(std::uint32_t protect_id) {
  auto victim = pick_shed_victim(protect_id);
  if (victim == pending_.end()) return false;
  shed(victim);
  return true;
}

void AlfReceiver::shed_for_overload(std::uint32_t protect_id) {
  if (cfg_.shed_highwater == 0 || reassembly_bytes_ <= cfg_.shed_highwater) return;
  const std::size_t target =
      cfg_.shed_lowwater > 0 ? cfg_.shed_lowwater : cfg_.shed_highwater / 2;
  while (reassembly_bytes_ > target) {
    if (!shed_one(protect_id)) break;
  }
}

void AlfReceiver::evict(std::map<std::uint32_t, Reassembly>::iterator it) {
  // The evicted ADU's bytes are dropped but its id stays OPEN: the nack
  // bookkeeping inherits the per-ADU recovery state, so the id is
  // re-fetched from scratch (bounded by max_nacks like any other loss).
  ++stats_.reassembly_evictions;
  NackState& st = nack_counts_[it->first];
  st.count = std::max(st.count, it->second.nacks);
  st.next_at = std::max(st.next_at, it->second.next_nack_at);
  release_pending(it);
}

bool AlfReceiver::reserve_bytes(std::uint32_t for_id, std::size_t need) {
  if (cfg_.reassembly_bytes_limit == 0) {
    reassembly_bytes_ += need;
    stats_.reassembly_bytes_peak = std::max(stats_.reassembly_bytes_peak, reassembly_bytes_);
    return true;
  }
  if (need > cfg_.reassembly_bytes_limit) return false;
  while (reassembly_bytes_ + need > cfg_.reassembly_bytes_limit) {
    // Oldest-incomplete first: the lowest id has waited longest for its
    // holes and is the most likely casualty of a burst long past.
    auto victim = pending_.begin();
    if (victim != pending_.end() && victim->first == for_id) ++victim;
    if (victim == pending_.end()) return false;
    evict(victim);
  }
  reassembly_bytes_ += need;
  stats_.reassembly_bytes_peak = std::max(stats_.reassembly_bytes_peak, reassembly_bytes_);
  return true;
}

void AlfReceiver::nack_scan() {
  if (failed_ || complete_fired_) {
    nack_timer_armed_ = false;
    return;
  }
  // Collect ids in [1, horizon] that are neither closed nor fully here.
  // The horizon is clamped to the id window so a forged DONE total cannot
  // turn the scan into an unbounded walk or grow nack_counts_ without end.
  std::uint32_t horizon = expected_total_ > 0 ? expected_total_ : highest_seen_;
  if (cfg_.adu_id_window > 0) {
    horizon = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        horizon, std::uint64_t{closed_prefix_} + cfg_.adu_id_window));
  }
  NackMessage m;
  m.session = cfg_.session_id;
  std::vector<std::uint32_t> to_abandon;

  // Exponential per-ADU backoff: after the n-th NACK of an id, wait
  // nack_retry * 2^(n-1) before asking again — the retransmission needs
  // time to traverse the sender's queue and the network. Without this, a
  // deep sender backlog burns through max_nacks before recovery can
  // possibly land (observed in the E5 bring-up).
  const SimTime now = loop_.now();
  for (std::uint32_t id = closed_prefix_ + 1;
       id <= horizon && m.adu_ids.size() < NackMessage::kMaxIds; ++id) {
    if (is_closed(id)) continue;
    if (manip_inflight_.contains(id)) continue;  // verifying on the engine
    auto it = pending_.find(id);
    if (it != pending_.end() && it->second.bytes_received == it->second.adu_len) {
      continue;  // completing right now
    }
    int* count;
    SimTime* next_at;
    if (it != pending_.end()) {
      count = &it->second.nacks;
      next_at = &it->second.next_nack_at;
    } else {
      NackState& st = nack_counts_[id];
      count = &st.count;
      next_at = &st.next_at;
    }
    if (now < *next_at) continue;  // give the last request time to work
    if (*count >= cfg_.max_nacks) {
      to_abandon.push_back(id);
      continue;
    }
    ++*count;
    const int shift = std::min(*count - 1, 6);
    SimDuration backoff = cfg_.nack_retry << shift;
    // Explicit ceiling (many-epoch recoveries should not wait out the full
    // doubling), then deterministic seeded jitter: sessions recovering from
    // one shared outage must not re-NACK in lockstep.
    if (cfg_.nack_backoff_cap > 0) backoff = std::min(backoff, cfg_.nack_backoff_cap);
    if (cfg_.nack_jitter > 0) {
      const auto span = static_cast<std::uint64_t>(
          static_cast<double>(backoff) * cfg_.nack_jitter);
      backoff += static_cast<SimDuration>(jitter_rng_.uniform(span + 1));
    }
    *next_at = now + backoff;
    m.adu_ids.push_back(id);
  }

  for (std::uint32_t id : to_abandon) {
    auto it = pending_.find(id);
    abandon(id, it != pending_.end() ? &it->second : nullptr);
  }

  if (!m.adu_ids.empty()) {
    ByteBuffer frame = encode_nack(m);
    feedback_out_.send(frame.span());
    ++stats_.nacks_sent;
    stats_.nack_ids_sent += m.adu_ids.size();
  }

  // Re-arm only while some known ADU is still outstanding; new arrivals
  // re-arm via arm_timers().
  if (!complete_fired_ && !failed_ && recovery_work_remains()) {
    nack_timer_ = loop_.schedule_after(cfg_.nack_retry, [this] {
      nack_timer_ = 0;
      nack_scan();
    });
  } else {
    nack_timer_armed_ = false;
  }
}

void AlfReceiver::send_progress() {
  if (failed_) {
    progress_timer_armed_ = false;
    return;
  }
  ProgressMessage m;
  m.session = cfg_.session_id;
  // "complete" here means CLOSED — delivered or consciously abandoned.
  m.complete_adus = closed_count();
  m.highest_adu_seen = highest_seen_;
  m.session_complete = complete_fired_;
  const SimDuration dt = loop_.now() - last_progress_at_;
  if (dt > 0) {
    const double bps = static_cast<double>(stats_.payload_bytes_delivered -
                                           bytes_at_last_progress_) *
                       8.0 / to_seconds(dt);
    m.consume_rate_kbps = static_cast<std::uint32_t>(bps / 1000.0);
  }
  last_progress_at_ = loop_.now();
  bytes_at_last_progress_ = stats_.payload_bytes_delivered;

  ByteBuffer frame = encode_progress(m);
  feedback_out_.send(frame.span());
  ++stats_.progress_sent;

  // Keep reporting while the session is live and unfinished (this is also
  // what lets the sender repair a lost DONE); stand down once idle.
  if (session_active()) {
    progress_timer_ = loop_.schedule_after(cfg_.progress_interval, [this] {
      progress_timer_ = 0;
      send_progress();
    });
  } else {
    progress_timer_armed_ = false;
  }
}

void AlfReceiver::on_done(const DoneMessage& d) {
  expected_total_ = d.total_adus;
  note_progress();  // learning the stream's extent is progress
  arm_timers();  // DONE may precede data (tiny streams, reordered paths)
  if (cfg_.retransmit == RetransmitPolicy::kNone) {
    // No recovery: everything not currently complete is lost; tell the
    // application in its own terms and finish. The walk is clamped to the
    // id window — a forged total cannot trigger an unbounded abandon loop.
    std::uint32_t limit = expected_total_;
    if (cfg_.adu_id_window > 0) {
      limit = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          limit, std::uint64_t{closed_prefix_} + cfg_.adu_id_window));
    }
    std::vector<std::uint32_t> missing;
    for (std::uint32_t id = closed_prefix_ + 1; id <= limit; ++id) {
      if (!is_closed(id)) missing.push_back(id);
    }
    for (std::uint32_t id : missing) {
      auto it = pending_.find(id);
      abandon(id, it != pending_.end() ? &it->second : nullptr);
    }
  }
  check_complete();
}

void AlfReceiver::check_complete() {
  if (complete_fired_ || expected_total_ == 0) return;
  if (closed_count() < expected_total_) return;
  complete_fired_ = true;
  // A completed session must not hold the event loop open: the pending
  // watchdog check would only be a no-op that stretches simulated time.
  if (watchdog_timer_ != 0) {
    loop_.cancel(watchdog_timer_);
    watchdog_timer_ = 0;
    watchdog_armed_ = false;
  }
  // One final report so the sender can retire its DONE-retry timer.
  ProgressMessage m;
  m.session = cfg_.session_id;
  m.complete_adus = closed_count();
  m.highest_adu_seen = highest_seen_;
  m.session_complete = true;
  ByteBuffer frame = encode_progress(m);
  feedback_out_.send(frame.span());
  ++stats_.progress_sent;
  if (on_complete_) on_complete_();
}

void AlfReceiver::emit_metrics(obs::MetricSink& sink) const {
  const ReceiverStats& s = stats_;
  sink.counter("fragments_received", s.fragments_received);
  sink.counter("fragments_corrupt", s.fragments_corrupt);
  sink.counter("fragments_duplicate", s.fragments_duplicate);
  sink.counter("fragments_for_done_adus", s.fragments_for_done_adus);
  sink.counter("fragments_fec_reconstructed", s.fragments_fec_reconstructed);
  sink.counter("adus_delivered", s.adus_delivered);
  sink.counter("adus_delivered_out_of_order", s.adus_delivered_out_of_order);
  sink.counter("adus_checksum_failed", s.adus_checksum_failed);
  sink.counter("adus_abandoned", s.adus_abandoned);
  sink.counter("nacks_sent", s.nacks_sent);
  sink.counter("nack_ids_sent", s.nack_ids_sent);
  sink.counter("progress_sent", s.progress_sent);
  sink.counter("payload_bytes_delivered", s.payload_bytes_delivered);
  sink.counter("reassembly_bytes_peak", s.reassembly_bytes_peak);
  sink.counter("fragments_oversized", s.fragments_oversized);
  sink.counter("fragments_out_of_window", s.fragments_out_of_window);
  sink.counter("fragments_dropped_mem", s.fragments_dropped_mem);
  sink.counter("reassembly_evictions", s.reassembly_evictions);
  sink.counter("watchdog_fired", s.watchdog_fired);
  sink.counter("fragments_stale_epoch", s.fragments_stale_epoch);
  sink.counter("adus_shed", s.adus_shed);
  sink.counter("adus_engine_offloaded", s.adus_engine_offloaded);
  sink.counter("fragments_zero_copy", s.fragments_zero_copy);
  sink.counter("fragments_pool_copied", s.fragments_pool_copied);
  sink.counter("adus_chain_delivered", s.adus_chain_delivered);
  sink.counter("adus_presentation_fused", s.adus_presentation_fused);
  sink.gauge("reassembly_bytes", static_cast<double>(reassembly_bytes_));
  obs::emit_cost(sink, "cost", manip_cost_);
  obs::emit_cost(sink, "reassembly", reassembly_cost_);
}

void AlfReceiver::register_metrics(obs::MetricsRegistry& reg, std::string prefix) const {
  reg.add_source(std::move(prefix),
                 [this](obs::MetricSink& sink) { emit_metrics(sink); });
}

}  // namespace ngp::alf
