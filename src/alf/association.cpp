#include "alf/association.h"

#include "obs/metrics.h"

namespace ngp::alf {

Association::Association(EventLoop& loop, NetPath& out_link, NetPath& in_link)
    : loop_(loop), out_link_(out_link), in_router_(in_link) {}

std::unique_ptr<Association> Association::initiate(EventLoop& loop, NetPath& out_link,
                                                   NetPath& in_link,
                                                   SessionConfig offer) {
  // Private constructor: cannot use make_unique.
  std::unique_ptr<Association> a(new Association(loop, out_link, in_link));
  Association* self = a.get();
  a->initiator_ = std::make_unique<HandshakeInitiator>(
      loop, out_link, a->in_router_.handshake_plane(), offer);
  a->initiator_->set_on_done([self](Result<SessionConfig> agreed) {
    if (!agreed.ok()) {
      if (self->on_established_) self->on_established_(agreed.error());
      return;
    }
    self->establish(*agreed, /*initiator=*/true);
  });
  a->initiator_->start();
  return a;
}

std::unique_ptr<Association> Association::listen(EventLoop& loop, NetPath& out_link,
                                                 NetPath& in_link, Capabilities caps) {
  std::unique_ptr<Association> a(new Association(loop, out_link, in_link));
  Association* self = a.get();
  a->responder_ = std::make_unique<HandshakeResponder>(
      loop, a->in_router_.handshake_plane(), out_link, std::move(caps));
  a->responder_->set_on_session([self](const SessionConfig& agreed) {
    self->establish(agreed, /*initiator=*/false);
  });
  return a;
}

void Association::establish(const SessionConfig& agreed, bool initiator) {
  agreed_ = agreed;
  // Initiator transmits on the offered id; responder on id + 1. Both
  // directions share every other negotiated parameter.
  SessionConfig tx_cfg = agreed;
  SessionConfig rx_cfg = agreed;
  if (initiator) {
    rx_cfg.session_id = static_cast<std::uint16_t>(agreed.session_id + 1);
  } else {
    tx_cfg.session_id = static_cast<std::uint16_t>(agreed.session_id + 1);
  }

  tx_ = std::make_unique<AlfSender>(loop_, out_link_,
                                    in_router_.feedback_plane(tx_cfg.session_id),
                                    tx_cfg);
  if (pending_recompute_) tx_->set_recompute(std::move(pending_recompute_));

  rx_ = std::make_unique<AlfReceiver>(loop_, in_router_.data_plane(rx_cfg.session_id),
                                      out_link_, rx_cfg);
  rx_->set_on_adu([this](Adu&& adu) {
    if (on_adu_) on_adu_(std::move(adu));
  });
  rx_->set_on_adu_lost([this](std::uint32_t id, const AduName& name, bool known) {
    if (on_adu_lost_) on_adu_lost_(id, name, known);
  });
  rx_->set_on_complete([this] {
    if (on_peer_done_) on_peer_done_();
  });

  established_ = true;
  if (on_established_) on_established_(agreed_);
}

Result<std::uint32_t> Association::send_adu(const AduName& name, ConstBytes payload) {
  if (!established_) {
    return Error{ErrorCode::kWouldBlock, "association not yet established"};
  }
  return tx_->send_adu(name, payload);
}

void Association::finish() {
  if (tx_) tx_->finish();
}

void Association::register_metrics(obs::MetricsRegistry& reg,
                                   const std::string& prefix) const {
  // The endpoints are created at establishment, possibly after
  // registration; a source for a not-yet-established direction simply
  // contributes no samples.
  reg.add_source(prefix + ".tx", [this](obs::MetricSink& sink) {
    if (tx_) tx_->emit_metrics(sink);
  });
  reg.add_source(prefix + ".rx", [this](obs::MetricSink& sink) {
    if (rx_) rx_->emit_metrics(sink);
  });
  in_router_.register_metrics(reg, prefix + ".router");
}

void Association::set_recompute(RecomputeFn fn) {
  if (tx_) {
    tx_->set_recompute(std::move(fn));
  } else {
    pending_recompute_ = std::move(fn);
  }
}

}  // namespace ngp::alf
