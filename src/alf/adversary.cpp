#include "alf/adversary.h"

#include <memory>

#include "obs/metrics.h"

namespace ngp::alf {

ByteBuffer forge_len_fragment(std::uint16_t session, std::uint32_t adu_id,
                              std::uint32_t claimed_len) {
  DataFragment f;
  f.session = session;
  f.adu_id = adu_id;
  f.name = generic_name(adu_id);
  f.syntax = TransferSyntax::kRaw;
  f.checksum_kind = ChecksumKind::kInternet;
  f.adu_len = claimed_len;
  f.frag_off = 0;
  static const std::uint8_t kBait[8] = {0xDE, 0xAD, 0xBE, 0xEF, 0, 1, 2, 3};
  f.payload = ConstBytes{kBait, sizeof kBait};
  return encode_fragment(f);
}

AdversaryFn make_chaos_adversary(AdversaryConfig config, AdversaryStats& stats) {
  // Rotation state lives in the closure so consecutive forgeries cycle
  // through the enabled shapes deterministically.
  auto turn = std::make_shared<std::uint32_t>(0);
  return [config, turn, &stats](ConstBytes observed, Rng& rng) -> ByteBuffer {
    auto msg = decode_message(observed);
    if (!msg || msg->type != MessageType::kData) return {};
    const DataFragment& seen = msg->data;

    const bool enabled[4] = {config.forge_len, config.cross_session,
                             config.conflicting_len, config.far_future_id};
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint32_t shape = (*turn)++ % 4;
      if (!enabled[shape]) continue;
      switch (shape) {
        case 0: {
          // Fresh id claiming a huge ADU: the unbounded-allocation probe.
          ++stats.forged_len;
          const auto id = seen.adu_id + static_cast<std::uint32_t>(rng.uniform_range(100, 199));
          return forge_len_fragment(seen.session, id, config.forged_adu_len);
        }
        case 1: {
          // The observed fragment verbatim, under a foreign session id.
          ++stats.cross_session;
          DataFragment f = seen;
          f.session = static_cast<std::uint16_t>(seen.session + config.foreign_session_delta);
          return encode_fragment(f);
        }
        case 2: {
          // Same id, contradictory metadata: claims double the length.
          ++stats.conflicting_len;
          DataFragment f = seen;
          f.adu_len = seen.adu_len * 2 + 64;
          f.frag_off = 0;
          return encode_fragment(f);
        }
        default: {
          // An id far beyond any plausible recovery window.
          ++stats.far_future_id;
          DataFragment f = seen;
          f.adu_id = seen.adu_id + config.far_id_delta;
          return encode_fragment(f);
        }
      }
    }
    return {};
  };
}

void emit_metrics(obs::MetricSink& sink, const AdversaryStats& stats) {
  sink.counter("forged_len", stats.forged_len);
  sink.counter("cross_session", stats.cross_session);
  sink.counter("conflicting_len", stats.conflicting_len);
  sink.counter("far_future_id", stats.far_future_id);
}

void register_metrics(obs::MetricsRegistry& reg, std::string prefix,
                      const AdversaryStats& stats) {
  reg.add_source(std::move(prefix), [&stats](obs::MetricSink& sink) {
    emit_metrics(sink, stats);
  });
}

}  // namespace ngp::alf
