#include "sessiond/session_table.h"

#include <algorithm>

#include "obs/metrics.h"

namespace ngp::sessiond {

namespace {

constexpr std::size_t round_up_pow2(std::size_t v) noexcept {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Bucket arrays grow at 3/4 occupancy — linear probing stays short.
constexpr bool needs_growth(std::size_t count, std::size_t slots) noexcept {
  return (count + 1) * 4 > slots * 3;
}

}  // namespace

thread_local SessionTable::ReentryCtx SessionTable::tls_ctx_;

/// RAII lock-or-reenter scope for one shard. The first scope a thread
/// opens on a shard takes the mutex, advertises itself in tls_ctx_, and —
/// after unlocking — flushes the graveyard of entries removed while it was
/// held. A nested scope on the same shard (a callback re-entering the
/// table) locks nothing and parks its removals in the outer scope's
/// graveyard, so entries stay alive until the code that might still hold
/// raw pointers to them has unwound.
class SessionTable::ShardScope {
 public:
  ShardScope(SessionTable& table, Shard& s)
      : table_(table),
        reentrant_(table.held_by_this_thread(s)),
        lock_(s.mu, std::defer_lock) {
    if (!reentrant_) {
      lock_.lock();
      saved_ = tls_ctx_;
      tls_ctx_ = {&table, &s, &graveyard_};
    }
  }
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;
  ~ShardScope() {
    if (reentrant_) return;
    tls_ctx_ = saved_;
    lock_.unlock();
    table_.flush(graveyard_);
  }

  /// Where removals performed in this scope defer their teardown: the
  /// outermost scope's graveyard, whichever nesting level we are.
  std::vector<PendingEvict>& graveyard() noexcept {
    return reentrant_ ? *tls_ctx_.graveyard : graveyard_;
  }

 private:
  SessionTable& table_;
  bool reentrant_;
  std::unique_lock<std::mutex> lock_;
  ReentryCtx saved_;
  std::vector<PendingEvict> graveyard_;
};

std::unique_lock<std::mutex> SessionTable::maybe_lock(const Shard& s) const {
  if (held_by_this_thread(s)) return {};
  return std::unique_lock<std::mutex>(s.mu);
}

void SessionTable::flush(std::vector<PendingEvict>& graveyard) {
  // Callbacks here may re-enter the table; each removal they cause opens
  // its own scope and flushes on exit, so recursion bottoms out.
  for (PendingEvict& p : graveyard) {
    if (p.notify && on_evict_) on_evict_(p.entry->flow, *p.entry->session, p.reason);
    delete p.entry;
  }
  graveyard.clear();
}

std::uint64_t flow_hash(const FlowId& flow) noexcept {
  // splitmix64 finalizer: full-avalanche, so both the shard index (low
  // bits) and the probe start (high bits) see well-mixed key material even
  // though flow keys are tiny sequential integers.
  std::uint64_t x = flow.key() + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

SessionTable::SessionTable(SessionTableConfig cfg) : cfg_(cfg) {
  const std::size_t n = round_up_pow2(std::max<std::size_t>(1, cfg_.shards));
  shard_mask_ = n - 1;
  shards_.reserve(n);
  const std::size_t cap =
      round_up_pow2(std::max<std::size_t>(4, cfg_.initial_shard_capacity));
  for (std::size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Shard>();
    s->slots.assign(cap, nullptr);
    shards_.push_back(std::move(s));
  }
}

SessionTable::~SessionTable() {
  for (auto& s : shards_) {
    for (Entry* e : s->slots) delete e;
  }
}

SessionTable::Shard& SessionTable::shard_for(std::uint64_t hash) const noexcept {
  return *shards_[hash & shard_mask_];
}

std::size_t SessionTable::shard_of(const FlowId& flow) const noexcept {
  return flow_hash(flow) & shard_mask_;
}

SessionTable::Entry* SessionTable::find_locked(Shard& s, std::uint64_t hash,
                                               const FlowId& flow) const {
  const std::size_t mask = s.slots.size() - 1;
  // Probe start uses the hash's high bits: the low bits already picked the
  // shard, so reusing them would funnel every resident flow into the same
  // probe sequence.
  std::size_t i = (hash >> 32) & mask;
  while (Entry* e = s.slots[i]) {
    if (e->hash == hash && e->flow == flow) return e;
    i = (i + 1) & mask;
  }
  return nullptr;
}

void SessionTable::insert_slot_locked(Shard& s, Entry* e) {
  const std::size_t mask = s.slots.size() - 1;
  std::size_t i = (e->hash >> 32) & mask;
  while (s.slots[i] != nullptr) i = (i + 1) & mask;
  s.slots[i] = e;
}

void SessionTable::remove_slot_locked(Shard& s, const Entry* e) {
  const std::size_t mask = s.slots.size() - 1;
  std::size_t i = (e->hash >> 32) & mask;
  while (s.slots[i] != e) i = (i + 1) & mask;
  // Backward-shift deletion (no tombstones): slide the cluster's displaced
  // entries back over the hole so probe chains stay break-free.
  s.slots[i] = nullptr;
  std::size_t j = i;
  for (;;) {
    j = (j + 1) & mask;
    Entry* n = s.slots[j];
    if (n == nullptr) return;
    const std::size_t home = (n->hash >> 32) & mask;
    // n may move into the hole only if its home position does not sit
    // strictly inside (i, j] — otherwise the move would break its chain.
    const bool movable = ((j - home) & mask) >= ((j - i) & mask);
    if (movable) {
      s.slots[i] = n;
      s.slots[j] = nullptr;
      i = j;
    }
  }
}

void SessionTable::grow_locked(Shard& s) {
  std::vector<Entry*> old = std::move(s.slots);
  s.slots.assign(old.size() * 2, nullptr);
  for (Entry* e : old) {
    if (e != nullptr) insert_slot_locked(s, e);
  }
}

void SessionTable::lru_unlink_locked(Shard& s, Entry* e) {
  if (e->lru_prev != nullptr) e->lru_prev->lru_next = e->lru_next;
  else s.lru_head = e->lru_next;
  if (e->lru_next != nullptr) e->lru_next->lru_prev = e->lru_prev;
  else s.lru_tail = e->lru_prev;
  e->lru_prev = e->lru_next = nullptr;
}

void SessionTable::lru_touch_locked(Shard& s, Entry* e) {
  if (s.lru_head == e) return;
  // A null prev on a non-head entry means e is not in the list yet (a
  // fresh insert) — unlinking it would clobber head/tail.
  if (e->lru_prev != nullptr) lru_unlink_locked(s, e);
  e->lru_next = s.lru_head;
  if (s.lru_head != nullptr) s.lru_head->lru_prev = e;
  s.lru_head = e;
  if (s.lru_tail == nullptr) s.lru_tail = e;
}

void SessionTable::evict_locked(Shard& s, Entry* e, EvictReason reason,
                                std::vector<PendingEvict>& graveyard) {
  remove_slot_locked(s, e);
  lru_unlink_locked(s, e);
  --s.count;
  size_.fetch_sub(1, std::memory_order_relaxed);
  if (reason == EvictReason::kIdle) ++s.c.evictions_idle;
  else ++s.c.evictions_shed;
  // on_evict_ and the session's destructor run at flush time, after the
  // shard lock drops — callbacks that re-enter the table are safe, and
  // raw pointers upstack (a route() mid-delivery) stay valid.
  graveyard.push_back({e, reason, /*notify=*/true});
}

SessionTable::Entry* SessionTable::pick_shed_victim_locked(Shard& s) {
  // Scan the LRU from its cold end: among unpinned entries the lowest
  // priority wins, ties resolved by least recent activity (first seen in
  // this direction). The scan is linear in shard occupancy, which is the
  // point of sharding: a high-water event touches one shard's worth.
  Entry* victim = nullptr;
  int victim_pri = 0;
  for (Entry* e = s.lru_tail; e != nullptr; e = e->lru_prev) {
    if (e->pinned) continue;
    const int pri = priority_ ? priority_(e->flow) : 0;
    if (victim == nullptr || pri < victim_pri) {
      victim = e;
      victim_pri = pri;
    }
  }
  return victim;
}

Result<Session*> SessionTable::insert_locked(Shard& s, const FlowId& flow,
                                             std::uint64_t hash,
                                             SessionPtr session, SimTime now,
                                             bool pinned,
                                             std::vector<PendingEvict>& graveyard) {
  if (find_locked(s, hash, flow) != nullptr) {
    return {ErrorCode::kDuplicate, "flow already resident"};
  }
  // Per-shard high water: admitting into a full shard sheds a resident, so
  // a storm concentrating on one shard degrades that shard by policy
  // instead of growing it without bound. The victim is only CHOSEN here —
  // nothing is evicted until every admission check has passed, so a
  // rejected insert never costs a resident session.
  Entry* victim = nullptr;
  if (cfg_.shard_highwater > 0 && s.count >= cfg_.shard_highwater) {
    victim = pick_shed_victim_locked(s);
    if (victim == nullptr) {
      // Every resident is pinned: nothing to shed, so the shard cannot
      // make room — refuse rather than grow past the water line.
      admission_rejects_.fetch_add(1, std::memory_order_relaxed);
      return {ErrorCode::kLimitExceeded, "shard at high water, all pinned"};
    }
  }
  // Global cap, counting the room the pending shed would make (so at the
  // cap a high-water insert still admits by replacement). The relaxed
  // read can transiently over-admit by one per concurrent shard —
  // admission is a resource bound, not an invariant, and an exact global
  // count would serialize every shard on one lock.
  if (cfg_.max_sessions > 0) {
    const std::size_t resident = size_.load(std::memory_order_relaxed);
    if (resident - (victim != nullptr ? 1 : 0) >= cfg_.max_sessions) {
      admission_rejects_.fetch_add(1, std::memory_order_relaxed);
      return {ErrorCode::kLimitExceeded, "session table full"};
    }
  }
  if (victim != nullptr) evict_locked(s, victim, EvictReason::kShed, graveyard);
  if (needs_growth(s.count, s.slots.size())) grow_locked(s);

  auto* e = new Entry{};
  e->flow = flow;
  e->hash = hash;
  e->session = std::move(session);
  e->last_active = now;
  e->pinned = pinned;
  insert_slot_locked(s, e);
  lru_touch_locked(s, e);
  ++s.count;
  ++s.c.inserts;
  s.c.occupancy_peak = std::max(s.c.occupancy_peak, s.count);
  const std::size_t sz = size_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t peak = size_peak_.load(std::memory_order_relaxed);
  while (sz > peak &&
         !size_peak_.compare_exchange_weak(peak, sz, std::memory_order_relaxed)) {
  }
  return e->session.get();
}

Result<Session*> SessionTable::insert(const FlowId& flow, SessionPtr session,
                                      SimTime now, bool pinned) {
  const std::uint64_t h = flow_hash(flow);
  Shard& s = shard_for(h);
  ShardScope scope(*this, s);
  return insert_locked(s, flow, h, std::move(session), now, pinned,
                       scope.graveyard());
}

bool SessionTable::with_session(const FlowId& flow, SimTime now,
                                const std::function<void(Session&)>& fn) {
  const std::uint64_t h = flow_hash(flow);
  Shard& s = shard_for(h);
  ShardScope scope(*this, s);
  ++s.c.lookups;
  Entry* e = find_locked(s, h, flow);
  if (e == nullptr) {
    ++s.c.misses;
    return false;
  }
  ++s.c.hits;
  e->last_active = now;
  lru_touch_locked(s, e);
  // fn may erase this very flow: the entry is then unlinked but parked in
  // the scope's graveyard, so *e->session outlives the call.
  fn(*e->session);
  return true;
}

SessionTable::RouteOutcome SessionTable::route(const FlowId& flow, SimTime now,
                                               ConstBytes frame,
                                               const SessionFactory* factory,
                                               bool pinned) {
  const std::uint64_t h = flow_hash(flow);
  Shard& s = shard_for(h);
  ShardScope scope(*this, s);
  ++s.c.lookups;
  if (Entry* e = find_locked(s, h, flow)) {
    ++s.c.hits;
    e->last_active = now;
    lru_touch_locked(s, e);
    e->session->on_frame(frame);
    return RouteOutcome::kRouted;
  }
  ++s.c.misses;
  if (factory == nullptr || !*factory) return RouteOutcome::kNoSession;
  SessionPtr fresh = (*factory)(flow, frame);
  if (fresh == nullptr) return RouteOutcome::kNoSession;
  auto r = insert_locked(s, flow, h, std::move(fresh), now, pinned,
                         scope.graveyard());
  if (!r.ok()) return RouteOutcome::kRejected;
  // First frame delivered under the same lock that admitted the flow: a
  // concurrent second frame for it serializes behind us, in order.
  (*r)->on_frame(frame);
  return RouteOutcome::kCreated;
}

bool SessionTable::erase(const FlowId& flow) {
  const std::uint64_t h = flow_hash(flow);
  Shard& s = shard_for(h);
  ShardScope scope(*this, s);
  Entry* e = find_locked(s, h, flow);
  if (e == nullptr) return false;
  remove_slot_locked(s, e);
  lru_unlink_locked(s, e);
  --s.count;
  ++s.c.erases;
  size_.fetch_sub(1, std::memory_order_relaxed);
  // Destruction is deferred past the lock (and past the caller's frame
  // when this is a session erasing itself mid-on_frame); erase() fires no
  // eviction callback — the caller asked, no one needs notifying.
  scope.graveyard().push_back({e, EvictReason::kIdle, /*notify=*/false});
  return true;
}

bool SessionTable::pin(const FlowId& flow, bool pinned) {
  const std::uint64_t h = flow_hash(flow);
  Shard& s = shard_for(h);
  const auto lock = maybe_lock(s);
  Entry* e = find_locked(s, h, flow);
  if (e == nullptr) return false;
  e->pinned = pinned;
  return true;
}

bool SessionTable::contains(const FlowId& flow) const {
  const std::uint64_t h = flow_hash(flow);
  Shard& s = shard_for(h);
  const auto lock = maybe_lock(s);
  return const_cast<SessionTable*>(this)->find_locked(s, h, flow) != nullptr;
}

std::size_t SessionTable::sweep_idle(SimTime now) {
  if (cfg_.idle_timeout <= 0) return 0;
  std::size_t evicted = 0;
  for (auto& sp : shards_) {
    Shard& s = *sp;
    // One scope per shard: each shard's eviction callbacks run after that
    // shard unlocks and before the next one locks, so the sweep never
    // holds a lock while user code runs.
    ShardScope scope(*this, s);
    // The LRU is ordered by last_active (every touch moves to head), so
    // the sweep walks the cold tail and stops at the first live entry —
    // pinned entries are stepped over, never evicted.
    Entry* e = s.lru_tail;
    while (e != nullptr && now - e->last_active >= cfg_.idle_timeout) {
      Entry* prev = e->lru_prev;
      if (!e->pinned) {
        evict_locked(s, e, EvictReason::kIdle, scope.graveyard());
        ++evicted;
      }
      e = prev;
    }
  }
  return evicted;
}

std::size_t SessionTable::size() const noexcept {
  return size_.load(std::memory_order_relaxed);
}

std::vector<std::size_t> SessionTable::shard_sizes() const {
  std::vector<std::size_t> out;
  out.reserve(shards_.size());
  for (const auto& sp : shards_) {
    const auto lock = maybe_lock(*sp);
    out.push_back(sp->count);
  }
  return out;
}

SessionTableStats SessionTable::stats() const {
  SessionTableStats t;
  for (const auto& sp : shards_) {
    const auto lock = maybe_lock(*sp);
    const ShardCounters& c = sp->c;
    t.lookups += c.lookups;
    t.hits += c.hits;
    t.misses += c.misses;
    t.inserts += c.inserts;
    t.erases += c.erases;
    t.evictions_idle += c.evictions_idle;
    t.evictions_shed += c.evictions_shed;
    t.occupancy += sp->count;
  }
  t.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  t.occupancy_peak = size_peak_.load(std::memory_order_relaxed);
  return t;
}

void SessionTable::emit_metrics(obs::MetricSink& sink) const {
  const SessionTableStats t = stats();
  sink.counter("lookups", t.lookups);
  sink.counter("hits", t.hits);
  sink.counter("misses", t.misses);
  sink.counter("inserts", t.inserts);
  sink.counter("erases", t.erases);
  sink.counter("evictions_idle", t.evictions_idle);
  sink.counter("evictions_shed", t.evictions_shed);
  sink.counter("admission_rejects", t.admission_rejects);
  sink.gauge("occupancy", static_cast<double>(t.occupancy));
  sink.gauge("occupancy_peak", static_cast<double>(t.occupancy_peak));
  sink.gauge("shards", static_cast<double>(shards_.size()));
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    obs::PrefixedSink ps(sink, "shard" + std::to_string(i) + ".");
    const auto lock = maybe_lock(s);
    ps.gauge("occupancy", static_cast<double>(s.count));
    ps.gauge("occupancy_peak", static_cast<double>(s.c.occupancy_peak));
    ps.counter("lookups", s.c.lookups);
    ps.counter("misses", s.c.misses);
    ps.counter("evictions_idle", s.c.evictions_idle);
    ps.counter("evictions_shed", s.c.evictions_shed);
  }
}

void SessionTable::register_metrics(obs::MetricsRegistry& reg,
                                    std::string prefix) const {
  reg.add_source(std::move(prefix),
                 [this](obs::MetricSink& sink) { emit_metrics(sink); });
}

}  // namespace ngp::sessiond
