// sessiond.h — the many-session plane and the redesigned session API
// (DESIGN.md §11).
//
// Everything below replaces the repo's original endpoint idiom —
// "construct an AlfSender, construct an AlfReceiver against the same
// paths, staple callbacks onto each by hand" — with two cooperating
// pieces:
//
//   * Dispatcher: binds shared ingress paths, peeks the session id off
//     each arriving frame (alf::peek_flow_id — demux is the one control
//     step §6 concedes), and routes it to the owning session in a sharded
//     SessionTable, creating sessions on first frame via a registered
//     SessionFactory. This is how ONE host terminates 100k+ flows: no
//     per-session ingress path, no per-session handler registration.
//
//   * Sessiond::open(config, paths) -> SessionHandle: the facade for
//     deliberately-opened associations. One call validates the config,
//     builds the endpoints (supervised via ngp::resilience on opt-in),
//     registers the flow in the table (pinned — never idle-swept), and
//     returns an RAII handle that closes the session on destruction.
//
// The sim stays deterministic: open() builds endpoints in the exact order
// the hand-wired examples did, so a migrated program replays the same
// event sequence byte for byte.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "alf/receiver.h"
#include "alf/sender.h"
#include "alf/session.h"
#include "netsim/net_path.h"
#include "obs/flight.h"
#include "resilience/supervisor.h"
#include "sessiond/session_table.h"
#include "util/event_loop.h"
#include "util/result.h"

namespace ngp::sessiond {

class Sessiond;

/// Routes raw ingress frames to table-resident sessions. dispatch() may
/// run from many threads: distinct shards proceed in parallel, one flow's
/// frames serialize behind its shard lock. Setup calls (bind, set_factory,
/// set_flight) belong to the control thread, before traffic.
class Dispatcher {
 public:
  Dispatcher(EventLoop& loop, SessionTable& table)
      : loop_(loop), table_(table) {}
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Create-on-first-frame hook. Unset (or returning null) means unknown
  /// flows are dropped and counted unroutable.
  void set_factory(SessionFactory fn) { factory_ = std::move(fn); }

  /// Registers this dispatcher as `ingress`'s frame handler under an
  /// auto-assigned peer address (returned). Frames from different bound
  /// paths with the same session id are different flows.
  std::uint32_t bind(NetPath& ingress);
  /// Same, under an explicit peer address.
  void bind(NetPath& ingress, std::uint32_t peer);

  /// Routes one frame: peek flow id -> shard lookup -> session->on_frame,
  /// creating the session via the factory on first frame.
  void dispatch(std::uint32_t peer, ConstBytes frame);

  struct Stats {
    std::uint64_t frames_dispatched = 0;
    std::uint64_t frames_routed = 0;     ///< delivered to an existing session
    std::uint64_t sessions_created = 0;  ///< create-on-first-frame successes
    std::uint64_t frames_unroutable = 0; ///< unpeekable / no factory
    std::uint64_t creates_rejected = 0;  ///< admission control said no
  };
  Stats stats() const;

  void emit_metrics(obs::MetricSink& sink) const;
  void register_metrics(obs::MetricsRegistry& reg, std::string prefix) const;
  /// kSessionCreate events on an existing flight track (single-threaded
  /// dispatch only — flight tracks are single-writer).
  void set_flight(obs::FlightRecorder* flight, std::uint16_t track) noexcept {
    flight_ = flight;
    flight_track_ = track;
  }

 private:
  EventLoop& loop_;
  SessionTable& table_;
  SessionFactory factory_;
  std::atomic<std::uint32_t> next_peer_{1};
  std::atomic<std::uint64_t> frames_dispatched_{0};
  std::atomic<std::uint64_t> frames_routed_{0};
  std::atomic<std::uint64_t> sessions_created_{0};
  std::atomic<std::uint64_t> frames_unroutable_{0};
  std::atomic<std::uint64_t> creates_rejected_{0};
  obs::FlightRecorder* flight_ = nullptr;
  std::uint16_t flight_track_ = 0;
};

/// The three NetPaths one ALF association runs over, exactly as the
/// hand-wired pattern used them: the sender transmits on `data` and the
/// receiver listens on it; the receiver transmits NACK/PROGRESS on
/// `feedback_tx` and the sender listens on `feedback_rx` (usually two
/// views of one reverse channel).
struct SessionPaths {
  NetPath* data = nullptr;
  NetPath* feedback_tx = nullptr;
  NetPath* feedback_rx = nullptr;
};

/// Per-open knobs beyond the SessionConfig itself.
struct OpenOptions {
  /// Opt into supervisor-per-session resilience: the association is owned
  /// by a resilience::SessionSupervisor (restart + delta resume) instead
  /// of a bare endpoint pair. `supervisor.session` is overridden by the
  /// config passed to open().
  bool supervised = false;
  resilience::SupervisorConfig supervisor{};
  /// Shared manipulation engine for the receive side (flow+adu sharded —
  /// one pool serves every session).
  engine::Engine* engine = nullptr;
  SimDuration engine_harvest_delay = 0;
  /// Zero-copy opt-in (DESIGN.md §12): the shared rx buffer pool —
  /// normally the one the ingress Link writes into — handed to this
  /// session's receiver (every incarnation, under supervision). Closing,
  /// shedding, or evicting the session destroys its reassembly chains and
  /// recycles their segments. Must outlive the sessiond.
  buf::BufferPool* rx_pool = nullptr;
  /// Compiled presentation plan fused into the receiver's stage 2 (see
  /// AlfReceiver::set_presentation; survives supervised restarts). Must be
  /// the session's negotiated syntax. Null = no fusion.
  std::shared_ptr<const presentation::PresentationPlan> presentation;
  /// Peer address for the flow id; 0 = auto-assign a fresh one (so two
  /// opens with the same session id never collide unless asked to).
  std::uint32_t peer = 0;
};

/// One table-resident ALF association: either a supervisor or a bare
/// sender/receiver pair, plus the type-based frame demux a shared ingress
/// needs. Built by Sessiond::open().
class AlfSession final : public Session {
 public:
  /// Demux routing: data-direction frames (DATA/DONE) to the receiver,
  /// feedback-direction frames (NACK/PROGRESS/RESUME) to the sender.
  /// Directions without an endpoint drop the frame (the peer's problem).
  void on_frame(ConstBytes frame) override;

  bool supervised() const noexcept { return sup_ != nullptr; }
  /// Current endpoints. Under supervision these are the current
  /// incarnation — do not cache across restarts.
  alf::AlfSender& sender() { return sup_ ? sup_->sender() : *sender_; }
  alf::AlfReceiver& receiver() { return sup_ ? sup_->receiver() : *receiver_; }
  resilience::SessionSupervisor* supervisor() noexcept { return sup_.get(); }

  // Unified association surface (forwarded to the supervisor when
  // supervised, so callbacks survive restarts).
  Result<std::uint32_t> send_adu(const AduName& name, ConstBytes payload);
  void finish();
  void set_on_adu(std::function<void(Adu&&)> fn);
  /// Chain delivery (zero-copy handoff; see AlfReceiver::set_on_adu_chain).
  void set_on_adu_chain(std::function<void(AduChain&&)> fn);
  void set_on_adu_lost(
      std::function<void(std::uint32_t, const AduName&, bool)> fn);
  void set_on_complete(std::function<void()> fn);
  void set_priority(alf::PriorityFn fn);

 private:
  friend class Sessiond;
  AlfSession() = default;

  std::unique_ptr<resilience::SessionSupervisor> sup_;
  std::unique_ptr<alf::AlfSender> sender_;
  std::unique_ptr<alf::AlfReceiver> receiver_;
};

/// RAII ownership of an opened session: close() (or destruction) removes
/// the flow from the table and destroys the endpoints. Move-only. The
/// Sessiond must outlive its handles.
class SessionHandle {
 public:
  SessionHandle() = default;
  SessionHandle(SessionHandle&& o) noexcept { *this = std::move(o); }
  SessionHandle& operator=(SessionHandle&& o) noexcept;
  SessionHandle(const SessionHandle&) = delete;
  SessionHandle& operator=(const SessionHandle&) = delete;
  ~SessionHandle() { close(); }

  bool valid() const noexcept { return session_ != nullptr; }
  explicit operator bool() const noexcept { return valid(); }
  FlowId flow() const noexcept { return flow_; }

  /// Ends the association now: unregisters the flow and destroys the
  /// endpoints (cancelling their timers). Safe to call repeatedly.
  void close();

  // The association surface, forwarded (see AlfSession).
  Result<std::uint32_t> send_adu(const AduName& name, ConstBytes payload) {
    return session().send_adu(name, payload);
  }
  void finish() { session().finish(); }
  void set_on_adu(std::function<void(Adu&&)> fn) {
    session().set_on_adu(std::move(fn));
  }
  void set_on_adu_chain(std::function<void(AduChain&&)> fn) {
    session().set_on_adu_chain(std::move(fn));
  }
  void set_on_adu_lost(
      std::function<void(std::uint32_t, const AduName&, bool)> fn) {
    session().set_on_adu_lost(std::move(fn));
  }
  void set_on_complete(std::function<void()> fn) {
    session().set_on_complete(std::move(fn));
  }
  void set_priority(alf::PriorityFn fn) { session().set_priority(std::move(fn)); }

  alf::AlfSender& sender() { return session().sender(); }
  alf::AlfReceiver& receiver() { return session().receiver(); }
  /// Null unless opened with OpenOptions::supervised.
  resilience::SessionSupervisor* supervisor() { return session().supervisor(); }

 private:
  friend class Sessiond;
  SessionHandle(Sessiond* owner, FlowId flow, AlfSession* session)
      : owner_(owner), flow_(flow), session_(session) {}
  AlfSession& session() {
    assert(session_ != nullptr);
    return *session_;
  }

  Sessiond* owner_ = nullptr;
  FlowId flow_{};
  AlfSession* session_ = nullptr;
};

/// Options for alf_receiver_factory().
struct ReceiverFactoryOptions {
  engine::Engine* engine = nullptr;
  SimDuration engine_harvest_delay = 0;
  /// Zero-copy opt-in for every factory-created receiver (see
  /// OpenOptions::rx_pool).
  buf::BufferPool* rx_pool = nullptr;
  /// Presentation fusion for every factory-created receiver (see
  /// OpenOptions::presentation) — the server shape's live-traffic path:
  /// thousands of receivers decode through one shared compiled plan.
  std::shared_ptr<const presentation::PresentationPlan> presentation;
  /// Per-session configurator, run right after construction: set on_adu /
  /// on_complete / priority here (the factory equivalent of the callback
  /// stapling open() handles do through their handle).
  std::function<void(const FlowId&, alf::AlfReceiver&)> configure;
};

/// SessionFactory for demux-fed receive-side sessions: each new flow gets
/// an AlfReceiver built from `base` (session_id overridden by the flow's),
/// sending feedback out `feedback_out`, consuming frames only through the
/// dispatcher. This is the server shape: thousands of receivers, one
/// ingress, one feedback egress. Each flow is a single allocation — the
/// receiver is embedded in the table-resident session object.
SessionFactory alf_receiver_factory(EventLoop& loop, NetPath& feedback_out,
                                    alf::SessionConfig base,
                                    ReceiverFactoryOptions opts = {});

struct SessiondConfig {
  SessionTableConfig table;
  /// Sim-clock idle-GC cadence: > 0 arms a recurring sweep_idle() timer.
  /// NOTE a recurring timer keeps EventLoop::run() busy forever — use
  /// run_until(), or leave this 0 and call sweep_idle() manually.
  SimDuration sweep_interval = 0;
};

/// The facade that owns the table and the dispatcher.
class Sessiond {
 public:
  using Config = SessiondConfig;

  explicit Sessiond(EventLoop& loop, Config cfg = {});
  Sessiond(const Sessiond&) = delete;
  Sessiond& operator=(const Sessiond&) = delete;
  ~Sessiond();

  /// Opens one full association over `paths`: validates `session`, builds
  /// the endpoints (exactly the hand-wired construction order, so
  /// migrated programs stay byte-identical), registers the flow pinned in
  /// the table, and returns the owning handle. Errors: validation
  /// failures, missing paths, duplicate (peer, session_id).
  Result<SessionHandle> open(const alf::SessionConfig& session,
                             const SessionPaths& paths, OpenOptions opts = {});

  /// Dispatcher ingress binding (see Dispatcher::bind).
  std::uint32_t bind(NetPath& ingress) { return dispatcher_.bind(ingress); }
  void bind(NetPath& ingress, std::uint32_t peer) {
    dispatcher_.bind(ingress, peer);
  }
  /// Create-on-first-frame hook (see Dispatcher::set_factory).
  void set_factory(SessionFactory fn) { dispatcher_.set_factory(std::move(fn)); }

  /// Manual idle GC at `now` (or the loop's now). Returns evicted count.
  std::size_t sweep_idle() { return table_.sweep_idle(loop_.now()); }

  SessionTable& table() noexcept { return table_; }
  Dispatcher& dispatcher() noexcept { return dispatcher_; }
  EventLoop& loop() noexcept { return loop_; }

  /// Observes evictions (idle/shed) of any table-resident session.
  void set_on_evict(std::function<void(const FlowId&, EvictReason)> fn) {
    on_evict_ = std::move(fn);
  }

  /// One "sessiond" flight track: kSessionCreate on dispatcher creates,
  /// kSessionEvict on idle/shed evictions (single-threaded sim only).
  /// Idempotent per recorder (repeat calls reuse the cached track); null
  /// disables recording and a later re-enable picks the track back up.
  void set_flight(obs::FlightRecorder* flight);

  /// Registers table ("<prefix>.table", per-shard nested) and dispatcher
  /// ("<prefix>.dispatch") metrics.
  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix);

 private:
  friend class SessionHandle;
  void arm_sweep();

  EventLoop& loop_;
  Config cfg_;
  SessionTable table_;
  Dispatcher dispatcher_;
  std::uint32_t next_open_peer_ = 0x40000000;  ///< disjoint from bind() peers
  EventId sweep_timer_ = 0;
  obs::FlightRecorder* flight_ = nullptr;
  std::uint16_t flight_track_ = 0;
  obs::FlightRecorder* tracked_flight_ = nullptr;  ///< recorder the cached
  std::uint16_t tracked_track_ = 0;                ///< track was added on
  std::function<void(const FlowId&, EvictReason)> on_evict_;
};

}  // namespace ngp::sessiond
