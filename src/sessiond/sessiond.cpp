#include "sessiond/sessiond.h"

#include "alf/wire.h"
#include "obs/metrics.h"

namespace ngp::sessiond {

// ---- Dispatcher ------------------------------------------------------------

std::uint32_t Dispatcher::bind(NetPath& ingress) {
  const std::uint32_t peer =
      next_peer_.fetch_add(1, std::memory_order_relaxed);
  bind(ingress, peer);
  return peer;
}

void Dispatcher::bind(NetPath& ingress, std::uint32_t peer) {
  ingress.set_handler(
      [this, peer](ConstBytes frame) { dispatch(peer, frame); });
}

void Dispatcher::dispatch(std::uint32_t peer, ConstBytes frame) {
  frames_dispatched_.fetch_add(1, std::memory_order_relaxed);
  const auto sid = alf::peek_flow_id(frame);
  if (!sid) {
    frames_unroutable_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const FlowId flow{peer, *sid};
  switch (table_.route(flow, loop_.now(), frame, &factory_)) {
    case SessionTable::RouteOutcome::kRouted:
      frames_routed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case SessionTable::RouteOutcome::kCreated:
      sessions_created_.fetch_add(1, std::memory_order_relaxed);
      obs::flight_record(flight_, flight_track_,
                         obs::FlightStage::kSessionCreate,
                         obs::flight_trace_id(flow.session_id, 0),
                         table_.size());
      break;
    case SessionTable::RouteOutcome::kNoSession:
      frames_unroutable_.fetch_add(1, std::memory_order_relaxed);
      break;
    case SessionTable::RouteOutcome::kRejected:
      creates_rejected_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

Dispatcher::Stats Dispatcher::stats() const {
  Stats s;
  s.frames_dispatched = frames_dispatched_.load(std::memory_order_relaxed);
  s.frames_routed = frames_routed_.load(std::memory_order_relaxed);
  s.sessions_created = sessions_created_.load(std::memory_order_relaxed);
  s.frames_unroutable = frames_unroutable_.load(std::memory_order_relaxed);
  s.creates_rejected = creates_rejected_.load(std::memory_order_relaxed);
  return s;
}

void Dispatcher::emit_metrics(obs::MetricSink& sink) const {
  const Stats s = stats();
  sink.counter("frames_dispatched", s.frames_dispatched);
  sink.counter("frames_routed", s.frames_routed);
  sink.counter("sessions_created", s.sessions_created);
  sink.counter("frames_unroutable", s.frames_unroutable);
  sink.counter("creates_rejected", s.creates_rejected);
}

void Dispatcher::register_metrics(obs::MetricsRegistry& reg,
                                  std::string prefix) const {
  reg.add_source(std::move(prefix),
                 [this](obs::MetricSink& sink) { emit_metrics(sink); });
}

// ---- AlfSession ------------------------------------------------------------

void AlfSession::on_frame(ConstBytes frame) {
  // A shared ingress can carry both directions of an association, so the
  // demux is by message direction: data-plane frames feed the receiver,
  // feedback-plane frames feed the sender. Probes are path-level traffic
  // either endpoint may see and both ignore — hand them to whichever
  // endpoint exists.
  const auto type = alf::peek_message_type(frame);
  if (!type) return;
  switch (*type) {
    case alf::MessageType::kData:
    case alf::MessageType::kDone:
      if (receiver_ != nullptr || sup_ != nullptr) receiver().handle_frame(frame);
      break;
    case alf::MessageType::kNack:
    case alf::MessageType::kProgress:
    case alf::MessageType::kResume:
      if (sender_ != nullptr || sup_ != nullptr) sender().handle_feedback(frame);
      break;
    case alf::MessageType::kProbe:
      if (receiver_ != nullptr || sup_ != nullptr) receiver().handle_frame(frame);
      else if (sender_ != nullptr) sender().handle_feedback(frame);
      break;
  }
}

Result<std::uint32_t> AlfSession::send_adu(const AduName& name,
                                           ConstBytes payload) {
  if (sup_) return sup_->send_adu(name, payload);
  return sender_->send_adu(name, payload);
}

void AlfSession::finish() {
  if (sup_) sup_->finish();
  else sender_->finish();
}

void AlfSession::set_on_adu(std::function<void(Adu&&)> fn) {
  if (sup_) sup_->set_on_adu(std::move(fn));
  else receiver_->set_on_adu(std::move(fn));
}

void AlfSession::set_on_adu_chain(std::function<void(AduChain&&)> fn) {
  if (sup_) sup_->set_on_adu_chain(std::move(fn));
  else receiver_->set_on_adu_chain(std::move(fn));
}

void AlfSession::set_on_adu_lost(
    std::function<void(std::uint32_t, const AduName&, bool)> fn) {
  if (sup_) sup_->set_on_adu_lost(std::move(fn));
  else receiver_->set_on_adu_lost(std::move(fn));
}

void AlfSession::set_on_complete(std::function<void()> fn) {
  if (sup_) sup_->set_on_complete(std::move(fn));
  else receiver_->set_on_complete(std::move(fn));
}

void AlfSession::set_priority(alf::PriorityFn fn) {
  if (sup_) sup_->set_priority(std::move(fn));
  else receiver_->set_priority(std::move(fn));
}

// ---- SessionHandle ---------------------------------------------------------

SessionHandle& SessionHandle::operator=(SessionHandle&& o) noexcept {
  if (this != &o) {
    close();
    owner_ = o.owner_;
    flow_ = o.flow_;
    session_ = o.session_;
    o.owner_ = nullptr;
    o.session_ = nullptr;
  }
  return *this;
}

void SessionHandle::close() {
  if (session_ == nullptr) return;
  // The table owns the AlfSession: erasing the flow destroys the
  // endpoints (their destructors cancel every pending timer).
  owner_->table_.erase(flow_);
  owner_ = nullptr;
  session_ = nullptr;
}

// ---- alf_receiver_factory --------------------------------------------------

namespace {

// Receive-only table resident: the AlfReceiver lives inside the Session
// object itself, so create-on-first-frame is one allocation and dispatch
// is one pointer hop from the table entry. At 100k+ sessions the extra
// indirection of the general AlfSession shape is measurable (bench_sessiond
// probes cold flows); receive-only flows — the server shape — don't need it.
class ReceiverSession final : public Session {
 public:
  ReceiverSession(EventLoop& loop, NetPath& feedback_out,
                  const alf::SessionConfig& cfg)
      : rx_(loop, nullptr, feedback_out, cfg) {}

  void on_frame(ConstBytes frame) override {
    // Same direction demux as AlfSession, minus the sender arm: feedback
    // frames on a receive-only flow have nowhere to go and drop.
    const auto type = alf::peek_message_type(frame);
    if (!type) return;
    switch (*type) {
      case alf::MessageType::kData:
      case alf::MessageType::kDone:
      case alf::MessageType::kProbe:
        rx_.handle_frame(frame);
        break;
      default:
        break;
    }
  }

  alf::AlfReceiver& receiver() noexcept { return rx_; }

 private:
  alf::AlfReceiver rx_;
};

}  // namespace

SessionFactory alf_receiver_factory(EventLoop& loop, NetPath& feedback_out,
                                    alf::SessionConfig base,
                                    ReceiverFactoryOptions opts) {
  return [&loop, &feedback_out, base, opts](const FlowId& flow,
                                            ConstBytes) -> SessionPtr {
    alf::SessionConfig cfg = base;
    cfg.session_id = flow.session_id;
    auto sess = std::make_unique<ReceiverSession>(loop, feedback_out, cfg);
    if (opts.engine != nullptr) {
      sess->receiver().set_engine(opts.engine, opts.engine_harvest_delay);
    }
    if (opts.rx_pool != nullptr) sess->receiver().set_rx_pool(opts.rx_pool);
    if (opts.presentation != nullptr) {
      sess->receiver().set_presentation(opts.presentation);
    }
    if (opts.configure) opts.configure(flow, sess->receiver());
    return sess;
  };
}

// ---- Sessiond --------------------------------------------------------------

Sessiond::Sessiond(EventLoop& loop, Config cfg)
    : loop_(loop), cfg_(cfg), table_(cfg.table), dispatcher_(loop, table_) {
  table_.set_on_evict([this](const FlowId& flow, Session&, EvictReason why) {
    obs::flight_record(flight_, flight_track_,
                       obs::FlightStage::kSessionEvict,
                       obs::flight_trace_id(flow.session_id, 0),
                       static_cast<std::uint64_t>(why));
    if (on_evict_) on_evict_(flow, why);
  });
  if (cfg_.sweep_interval > 0) arm_sweep();
}

Sessiond::~Sessiond() {
  if (sweep_timer_ != 0) loop_.cancel(sweep_timer_);
}

void Sessiond::arm_sweep() {
  sweep_timer_ = loop_.schedule_after(cfg_.sweep_interval, [this] {
    table_.sweep_idle(loop_.now());
    arm_sweep();
  });
}

Result<SessionHandle> Sessiond::open(const alf::SessionConfig& session,
                                     const SessionPaths& paths,
                                     OpenOptions opts) {
  // The facade's contract: a handle is only ever built from a validated
  // config — misconfiguration fails here, not as a misbehaving endpoint.
  if (Status st = session.validate(); !st.is_ok()) return st.error();
  if (paths.data == nullptr || paths.feedback_tx == nullptr ||
      paths.feedback_rx == nullptr) {
    return {ErrorCode::kMalformed, "open() needs data + both feedback paths"};
  }
  const std::uint32_t peer = opts.peer != 0 ? opts.peer : next_open_peer_++;
  const FlowId flow{peer, session.session_id};

  // Admission first, endpoints second. Endpoint constructors register
  // frame handlers on the (shared) paths, so building them before the
  // table says yes would — on a duplicate or a full table — tear them
  // straight back down, leaving the paths' handlers dangling and the
  // already-resident session on those paths deaf. The placeholder
  // AlfSession is inert (no endpoints: on_frame drops), so reserving the
  // entry before the endpoints exist is safe even against concurrent
  // dispatch to this flow.
  auto sess = std::unique_ptr<AlfSession>(new AlfSession());
  AlfSession* raw = sess.get();
  auto admitted = table_.insert(flow, std::move(sess), loop_.now(),
                                /*pinned=*/true);
  if (!admitted.ok()) return admitted.error();

  if (opts.supervised) {
    resilience::SupervisorConfig sup_cfg = opts.supervisor;
    sup_cfg.session = session;
    if (opts.engine != nullptr) {
      sup_cfg.engine = opts.engine;
      sup_cfg.engine_harvest_delay = opts.engine_harvest_delay;
    }
    sup_cfg.rx_pool = opts.rx_pool;
    sup_cfg.presentation = opts.presentation;
    raw->sup_ = std::make_unique<resilience::SessionSupervisor>(
        loop_, *paths.data, *paths.feedback_tx, *paths.feedback_rx, sup_cfg);
  } else {
    // Hand-wired construction order, preserved exactly: sender first (its
    // ctor registers the feedback handler), then receiver (data handler).
    // Migrated programs replay the identical event sequence.
    raw->sender_ = std::make_unique<alf::AlfSender>(
        loop_, *paths.data, *paths.feedback_rx, session);
    raw->receiver_ = std::make_unique<alf::AlfReceiver>(
        loop_, *paths.data, *paths.feedback_tx, session);
    if (opts.engine != nullptr) {
      raw->receiver_->set_engine(opts.engine, opts.engine_harvest_delay);
    }
    if (opts.rx_pool != nullptr) raw->receiver_->set_rx_pool(opts.rx_pool);
    if (opts.presentation != nullptr) {
      raw->receiver_->set_presentation(opts.presentation);
    }
  }
  return SessionHandle(this, flow, raw);
}

void Sessiond::set_flight(obs::FlightRecorder* flight) {
  // One "sessiond" track per recorder, however many times we're pointed
  // at it: the track is cached so enable/disable/re-enable cycles neither
  // duplicate tracks nor fall back to writing stage events on track 0.
  if (flight != nullptr && flight != tracked_flight_) {
    tracked_flight_ = flight;
    tracked_track_ = flight->add_track("sessiond");
  }
  flight_ = flight;
  flight_track_ = flight != nullptr ? tracked_track_ : 0;
  dispatcher_.set_flight(flight_, flight_track_);
}

void Sessiond::register_metrics(obs::MetricsRegistry& reg,
                                const std::string& prefix) {
  table_.register_metrics(reg, prefix + ".table");
  dispatcher_.register_metrics(reg, prefix + ".dispatch");
}

}  // namespace ngp::sessiond
