// session_table.h — the sharded flow/session table at the heart of
// ngp::sessiond (DESIGN.md §11).
//
// The paper's ALF thesis makes this table cheap by construction: every
// frame names its session, so demux to per-flow state is a hash lookup,
// not a parse. The shape follows NPF's connection database and FlexTOE's
// per-flow parallelism: flows hash onto independent shards (per-shard
// mutex, open-addressed buckets), each shard keeps its own LRU order for
// idle GC, and admission control bounds what a connect storm can commit
// the host to — a global session cap plus per-shard high-water shedding
// that reuses the priority-hook idea from the overload work (PR 6).
//
// Threading: every shard is independently locked, so dispatch from many
// threads proceeds in parallel across shards and serializes per shard —
// which also means one flow's frames are processed in order without any
// extra machinery. Within the deterministic single-threaded sim the locks
// are uncontended and cost one uncontended CAS each.
//
// Re-entrancy: eviction callbacks and Session destructors never run under
// a shard mutex — removals are parked and settled after the lock drops.
// Code already running under a shard lock (Session::on_frame, the
// with_session functor, a SessionFactory) may re-enter the table for that
// same shard; the table detects the held lock and runs the nested call
// directly, so a session erasing itself from its own completion callback
// is a supported, deadlock-free pattern.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"
#include "util/sim_clock.h"

namespace ngp::obs {
class MetricSink;
class MetricsRegistry;
}  // namespace ngp::obs

namespace ngp::sessiond {

/// Identifies one flow: the peer the frames arrive from plus the session
/// id the frames themselves carry (alf::peek_flow_id). The peer address is
/// assigned by whoever binds ingress paths (Dispatcher) or opens sessions
/// (Sessiond) — the wire only names the session.
struct FlowId {
  std::uint32_t peer = 0;
  std::uint16_t session_id = 0;

  std::uint64_t key() const noexcept {
    return (std::uint64_t{peer} << 16) | session_id;
  }
  friend bool operator==(const FlowId& a, const FlowId& b) noexcept {
    return a.key() == b.key();
  }
};

/// What the table stores: anything that can consume a raw ingress frame.
/// AlfSession (sessiond.h) adapts ALF endpoints to this; tests use toy
/// implementations so table semantics are checkable in isolation.
class Session {
 public:
  virtual ~Session() = default;
  /// One raw frame off the wire, untrusted. Called with the owning shard's
  /// lock held. Re-entering the table for the SAME shard from here —
  /// erasing this or a sibling flow, inserting, routing — is safe: the
  /// table detects the held lock and runs the operation immediately,
  /// deferring any session destruction until the lock is released.
  /// Operations on OTHER shards take that shard's lock normally (always
  /// fine single-threaded; multi-threaded dispatch must not erase across
  /// shards from callbacks, or it risks lock-order inversion).
  virtual void on_frame(ConstBytes frame) = 0;
};

using SessionPtr = std::unique_ptr<Session>;

/// Builds the session for a flow's first frame (create-on-first-frame).
/// Returning null refuses the flow (counted unroutable, frame dropped).
using SessionFactory =
    std::function<SessionPtr(const FlowId& flow, ConstBytes first_frame)>;

/// Ranks a flow for shedding: lower = shed first (same convention as
/// alf::PriorityFn). Unset = all flows equal (LRU order decides).
using SessionPriorityFn = std::function<int(const FlowId& flow)>;

enum class EvictReason : std::uint8_t {
  kIdle = 0,  ///< idle sweep: no frame for idle_timeout of sim time
  kShed = 1,  ///< per-shard high-water admission shedding
};

struct SessionTableConfig {
  /// Shard count, rounded up to a power of two. Sized for the worst
  /// expected writer parallelism, not the session count — occupancy per
  /// shard is what the buckets absorb.
  std::size_t shards = 64;
  /// Global admission cap: inserts beyond this are rejected (the caller
  /// drops the frame; the flow retries into a later, emptier table). 0 =
  /// unlimited.
  std::size_t max_sessions = 0;
  /// Per-shard high-water mark: an insert into a shard at or above this
  /// occupancy first sheds that shard's lowest-priority, least-recently
  /// active unpinned session — or is rejected outright when every resident
  /// is pinned. 0 = never shed.
  std::size_t shard_highwater = 0;
  /// Idle GC horizon: sweep_idle(now) evicts unpinned sessions whose last
  /// frame is at least this much sim time old. 0 disables idle eviction.
  SimDuration idle_timeout = 0;
  /// Initial bucket-array capacity per shard (rounded to a power of two).
  std::size_t initial_shard_capacity = 16;
};

/// Aggregate counters (sum over shards; see also per-shard metrics).
struct SessionTableStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t erases = 0;
  std::uint64_t evictions_idle = 0;
  std::uint64_t evictions_shed = 0;
  std::uint64_t admission_rejects = 0;  ///< global max_sessions rejections
  std::size_t occupancy = 0;
  std::size_t occupancy_peak = 0;
};

/// Sharded, open-addressed flow table with per-shard LRU and admission
/// control. Pointers returned by insert() stay valid until the entry is
/// erased or evicted (entries are heap nodes; the bucket arrays hold
/// pointers and can grow without moving sessions).
class SessionTable {
 public:
  explicit SessionTable(SessionTableConfig cfg = {});
  SessionTable(const SessionTable&) = delete;
  SessionTable& operator=(const SessionTable&) = delete;
  ~SessionTable();

  /// Admits a flow. Fails with kLimitExceeded when the global cap is hit
  /// (after per-shard shedding, if configured, failed to make room) and
  /// kDuplicate when the flow already resides. `pinned` entries (open()
  /// handles) are never idle-swept or shed — only erase() removes them.
  Result<Session*> insert(const FlowId& flow, SessionPtr session, SimTime now,
                          bool pinned = false);

  /// Looks the flow up and, under the owning shard's lock, runs `fn` on
  /// its session; touches the LRU clock. False = not resident. This is
  /// the dispatch primitive: per-flow serialization comes from the shard
  /// lock. `fn` may re-enter the table (see Session::on_frame for the
  /// same-shard guarantee and the cross-shard caveat).
  bool with_session(const FlowId& flow, SimTime now,
                    const std::function<void(Session&)>& fn);

  /// Dispatch-or-create in one locked step: routes `frame` to the flow's
  /// session, creating it via `factory` on a miss (create-on-first-frame,
  /// admission control applied). Outcome tells the caller what happened.
  enum class RouteOutcome : std::uint8_t {
    kRouted = 0,    ///< existing session consumed the frame
    kCreated = 1,   ///< factory built a session; it consumed the frame
    kNoSession = 2, ///< miss and no factory / factory refused
    kRejected = 3,  ///< miss and admission control refused
  };
  RouteOutcome route(const FlowId& flow, SimTime now, ConstBytes frame,
                     const SessionFactory* factory, bool pinned = false);

  /// Removes a flow (pinned or not). True if it was resident.
  bool erase(const FlowId& flow);
  /// Re-pins or unpins a resident flow. False = not resident.
  bool pin(const FlowId& flow, bool pinned);
  bool contains(const FlowId& flow) const;

  /// Evicts every unpinned session idle since `now - idle_timeout`.
  /// Driven by the sim clock (caller or Sessiond's sweep timer decides
  /// cadence). Returns the number evicted. No-op when idle_timeout == 0.
  std::size_t sweep_idle(SimTime now);

  std::size_t size() const noexcept;
  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t shard_of(const FlowId& flow) const noexcept;
  /// Per-shard occupancy (test hook for distribution uniformity).
  std::vector<std::size_t> shard_sizes() const;

  /// Shed/evict rank; unset = all flows equal. Set before traffic.
  void set_priority(SessionPriorityFn fn) { priority_ = std::move(fn); }
  /// Observes every idle/shed eviction, after removal from the table but
  /// before the session is destroyed (the flight hook and the facade's
  /// bookkeeping hang off this). Runs with the shard lock RELEASED — the
  /// entry is already unlinked, so the callback may freely re-enter the
  /// table (erase a related flow, insert a replacement, read stats).
  void set_on_evict(
      std::function<void(const FlowId&, Session&, EvictReason)> fn) {
    on_evict_ = std::move(fn);
  }

  SessionTableStats stats() const;

  /// Aggregate counters plus per-shard occupancy/lookup/eviction metrics
  /// nested as "shard<i>.<name>" (PrefixedSink).
  void emit_metrics(obs::MetricSink& sink) const;
  void register_metrics(obs::MetricsRegistry& reg, std::string prefix) const;

 private:
  struct Entry {
    FlowId flow;
    std::uint64_t hash = 0;
    SessionPtr session;
    SimTime last_active = 0;
    bool pinned = false;
    Entry* lru_prev = nullptr;  ///< toward most recent
    Entry* lru_next = nullptr;  ///< toward least recent
  };

  struct ShardCounters {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t erases = 0;
    std::uint64_t evictions_idle = 0;
    std::uint64_t evictions_shed = 0;
    std::size_t occupancy_peak = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::vector<Entry*> slots;  ///< open-addressed, linear probe; null = free
    std::size_t count = 0;
    Entry* lru_head = nullptr;  ///< most recently active
    Entry* lru_tail = nullptr;  ///< least recently active
    ShardCounters c;
  };

  /// An entry removed from the table whose on_evict_ callback and
  /// destruction are deferred until the owning shard's lock is released
  /// (so neither user callbacks nor Session destructors ever run under a
  /// shard mutex).
  struct PendingEvict {
    Entry* entry = nullptr;
    EvictReason reason = EvictReason::kIdle;
    bool notify = false;  ///< evictions fire on_evict_; erase() does not
  };

  /// Which (table, shard) the current thread holds locked, and where its
  /// deferred teardown work accumulates. This is what makes same-shard
  /// re-entry from callbacks safe: a nested call sees its shard already
  /// held and runs lock-free against it, parking removals in the outer
  /// scope's graveyard.
  struct ReentryCtx {
    const SessionTable* table = nullptr;
    const Shard* shard = nullptr;
    std::vector<PendingEvict>* graveyard = nullptr;
  };
  class ShardScope;
  static thread_local ReentryCtx tls_ctx_;

  bool held_by_this_thread(const Shard& s) const noexcept {
    return tls_ctx_.table == this && tls_ctx_.shard == &s;
  }
  /// Locks s.mu unless this thread already holds it (re-entrant read path).
  std::unique_lock<std::mutex> maybe_lock(const Shard& s) const;
  /// Runs deferred callbacks and destroys parked entries. Caller must NOT
  /// hold any shard lock.
  void flush(std::vector<PendingEvict>& graveyard);

  Shard& shard_for(std::uint64_t hash) const noexcept;
  // All helpers below run with the shard's lock held.
  Entry* find_locked(Shard& s, std::uint64_t hash, const FlowId& flow) const;
  void insert_slot_locked(Shard& s, Entry* e);
  void remove_slot_locked(Shard& s, const Entry* e);
  void grow_locked(Shard& s);
  void lru_touch_locked(Shard& s, Entry* e);
  void lru_unlink_locked(Shard& s, Entry* e);
  void evict_locked(Shard& s, Entry* e, EvictReason reason,
                    std::vector<PendingEvict>& graveyard);
  /// Lowest-priority, least-recently-active unpinned entry; null if all
  /// pinned.
  Entry* pick_shed_victim_locked(Shard& s);
  Result<Session*> insert_locked(Shard& s, const FlowId& flow,
                                 std::uint64_t hash, SessionPtr session,
                                 SimTime now, bool pinned,
                                 std::vector<PendingEvict>& graveyard);

  SessionTableConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_mask_ = 0;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> size_peak_{0};
  std::atomic<std::uint64_t> admission_rejects_{0};
  SessionPriorityFn priority_;
  std::function<void(const FlowId&, Session&, EvictReason)> on_evict_;
};

/// The hash that spreads flows over shards and buckets (splitmix64 mix of
/// FlowId::key). Exposed for the distribution-uniformity test.
std::uint64_t flow_hash(const FlowId& flow) noexcept;

}  // namespace ngp::sessiond
