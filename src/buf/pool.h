// pool.h — refcounted arena buffer pool for the zero-copy datapath (ngp::buf).
//
// §4's ledger says the stack should touch each data byte once; every copy
// the CostAccount flags on a transfer (sender staging, reassembly
// copy-into-place, sink delivery) exists because layers exchange OWNED flat
// buffers. This pool replaces ownership-by-copy with ownership-by-reference:
// frames are received once into a pool segment, and every later layer holds
// a refcounted slice of that segment instead of its own copy (the
// mbuf/nbuf design — see ROADMAP item 2's pointers into 4.4BSD `sys/mbuf`
// and NPF `nbuf`).
//
// Shape:
//   * fixed SIZE CLASSES, each backed by SLABS carved into equal segments —
//     allocation is a freelist pop, never a heap call on the steady path;
//   * an intrusive atomic refcount per segment; the LAST release recycles
//     the segment back to its class (possibly from another thread — engine
//     workers finish manipulation jobs off the control thread);
//   * a PER-THREAD free cache in front of the central freelist, so the
//     common alloc/release pairs on the control thread never take the lock;
//   * oversize requests fall back to one-off heap segments (counted, so the
//     ledger shows when the class table is mis-sized);
//   * under AddressSanitizer free segments are POISONED, so a stale BufRef
//     dereference after the last release is a hard ASan report instead of
//     silent corruption.
//
// Thread safety: alloc/release are safe from any thread. Everything else
// (stats snapshot, export_metrics) is control-thread-only by convention,
// reading relaxed atomics (monotonic counters, so a snapshot is always
// consistent-enough for gauges).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "util/bytes.h"

namespace ngp::buf {

class BufferPool;

namespace detail {

/// Segment control block. Lives in pool-owned arrays (one per slab), next
/// to — not inside — the data bytes, so poisoned data regions never cover
/// the bookkeeping the pool itself needs.
struct Segment {
  std::atomic<std::uint32_t> refs{0};
  BufferPool* pool = nullptr;  ///< nullptr: one-off heap segment (oversize)
  std::uint32_t class_index = 0;
  std::uint32_t capacity = 0;
  std::uint8_t* data = nullptr;
  Segment* next = nullptr;  ///< freelist link (meaningful only while free)
};

}  // namespace detail

/// Refcounted handle to one pool segment. Copying adds a reference; the
/// destructor of the LAST handle recycles the segment into its pool (or
/// frees it, for oversize heap segments). A default-constructed BufRef is
/// empty and safe to destroy.
class BufRef {
 public:
  BufRef() = default;
  BufRef(const BufRef& o) noexcept : seg_(o.seg_) { retain(); }
  BufRef(BufRef&& o) noexcept : seg_(o.seg_) { o.seg_ = nullptr; }
  BufRef& operator=(const BufRef& o) noexcept {
    if (this != &o) {
      release();
      seg_ = o.seg_;
      retain();
    }
    return *this;
  }
  BufRef& operator=(BufRef&& o) noexcept {
    if (this != &o) {
      release();
      seg_ = o.seg_;
      o.seg_ = nullptr;
    }
    return *this;
  }
  ~BufRef() { release(); }

  explicit operator bool() const noexcept { return seg_ != nullptr; }

  std::uint8_t* data() const noexcept { return seg_ ? seg_->data : nullptr; }
  std::size_t capacity() const noexcept { return seg_ ? seg_->capacity : 0; }
  MutableBytes bytes() const noexcept {
    return seg_ ? MutableBytes{seg_->data, seg_->capacity} : MutableBytes{};
  }

  /// Current reference count (0 for an empty ref). A relaxed read — only
  /// meaningful as "exactly 1" on a thread that itself holds a reference.
  std::uint32_t use_count() const noexcept {
    return seg_ ? seg_->refs.load(std::memory_order_relaxed) : 0;
  }
  bool unique() const noexcept { return use_count() == 1; }

  void reset() noexcept {
    release();
    seg_ = nullptr;
  }

  /// True when `span` lies entirely inside this segment's data region —
  /// the containment test the receiver uses to decide whether an incoming
  /// frame's payload can be referenced instead of copied.
  bool contains(ConstBytes span) const noexcept {
    if (seg_ == nullptr || span.data() == nullptr) return false;
    const std::uint8_t* lo = seg_->data;
    const std::uint8_t* hi = seg_->data + seg_->capacity;
    return span.data() >= lo && span.data() + span.size() <= hi;
  }

 private:
  friend class BufferPool;
  explicit BufRef(detail::Segment* s) noexcept : seg_(s) {}  // adopts one ref

  void retain() noexcept {
    if (seg_) seg_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  void release() noexcept;

  detail::Segment* seg_ = nullptr;
};

/// Pool sizing knobs. Defaults fit the ALF datapath: small control frames,
/// mid-size fragments, large reassembled ADUs.
struct PoolConfig {
  /// Segment capacities, ascending. A request is served from the first
  /// class that fits; larger requests get a one-off heap segment.
  std::vector<std::size_t> size_classes{512, 2048, 8192, 65536};
  /// Segments carved per slab allocation.
  std::size_t slab_segments = 32;
  /// Per-thread free-cache capacity (segments per class per thread).
  std::size_t thread_cache_segments = 16;
};

/// Monotonic counters + point-in-time gauges. Counter reads are relaxed;
/// see the header comment for the snapshot discipline.
struct PoolStats {
  std::uint64_t allocs = 0;          ///< successful segment allocations
  std::uint64_t heap_fallbacks = 0;  ///< oversize one-off heap segments
  std::uint64_t recycles = 0;        ///< last-release returns to the pool
  std::uint64_t cross_thread_recycles = 0;  ///< recycle via central freelist
  std::uint64_t slab_allocs = 0;            ///< slabs carved
  std::uint64_t cache_hits = 0;             ///< allocs served per-thread
  // Gauges.
  std::uint64_t segments_live = 0;   ///< currently referenced segments
  std::uint64_t segments_total = 0;  ///< carved segments (all slabs)
  std::uint64_t bytes_reserved = 0;  ///< slab bytes owned by the pool
};

/// The arena. Slabs are never returned to the heap before the pool is
/// destroyed; destroying the pool while segments are live is a programming
/// error (asserted in debug builds).
class BufferPool {
 public:
  explicit BufferPool(PoolConfig cfg = {});
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Allocates a segment with capacity >= `bytes`. Never fails (heap
  /// fallback for oversize); returns an empty ref only for bytes == 0.
  BufRef alloc(std::size_t bytes);

  PoolStats stats() const noexcept;

  /// Registered-source body: pool gauges/counters for a MetricsRegistry
  /// (`registry.add_source("buf.pool", [&](auto& s){ pool.export_metrics(s); })`).
  void export_metrics(obs::MetricSink& sink) const;

 private:
  friend class BufRef;
  struct SizeClass;
  struct ThreadCache;

  void recycle(detail::Segment* seg) noexcept;
  detail::Segment* pop_central(std::size_t ci);
  void carve_slab(std::size_t ci);  // central lock held
  ThreadCache* cache_for_this_thread();

  static void poison(detail::Segment* seg) noexcept;
  static void unpoison(detail::Segment* seg) noexcept;

  PoolConfig cfg_;
  std::vector<std::unique_ptr<SizeClass>> classes_;

  /// Caches registered by threads that touched this pool; guarded by the
  /// global tls registry mutex (see pool.cpp), not a per-pool one, so the
  /// pool destructor and late thread exits cannot deadlock on each other.
  std::vector<ThreadCache*> caches_;

  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> heap_fallbacks_{0};
  std::atomic<std::uint64_t> recycles_{0};
  std::atomic<std::uint64_t> cross_thread_recycles_{0};
  std::atomic<std::uint64_t> slab_allocs_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> live_{0};
  std::atomic<std::uint64_t> segments_total_{0};
  std::atomic<std::uint64_t> bytes_reserved_{0};
};

}  // namespace ngp::buf
