// chain.h — mbuf/nbuf-style scatter-gather ADU chains (ngp::buf).
//
// A BufChain is an ordered iovec of pool-backed slices: the receive path's
// replacement for the flat reassembly buffer. Fragments arrive in pool
// segments; the reassembler LINKS a slice of each segment into the ADU's
// chain instead of copying bytes into place, and the manipulation pass
// (checksum/decrypt) walks the gather view segment by segment — the bytes
// are touched once, where the NIC (here: the simulated link) put them.
//
// Ownership rules (DESIGN.md §12):
//   * a Slice holds one reference to its segment; copying a Slice adds a
//     reference, destroying one drops it — the pool recycles on the last;
//   * a chain OWNS its bytes logically even when a transient extra segment
//     reference exists (the ingress frame guard during the handler call):
//     the residual holder never reads the span again, so in-place
//     manipulation by the chain is safe;
//   * headroom/trailroom (expand_front / expand_back) may only grow into
//     segment capacity the slice's creator reserved for it — the pool
//     never zeroes recycled segments, so fresh room holds stale bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "buf/pool.h"
#include "util/bytes.h"

namespace ngp::buf {

/// A referenced byte range inside one pool segment.
struct Slice {
  BufRef ref;
  std::uint32_t off = 0;  ///< start within the segment
  std::uint32_t len = 0;  ///< bytes this slice covers

  Slice() = default;
  Slice(BufRef r, std::size_t o, std::size_t n) noexcept
      : ref(std::move(r)), off(static_cast<std::uint32_t>(o)),
        len(static_cast<std::uint32_t>(n)) {}

  /// A whole-segment slice with `headroom` bytes reserved in front.
  static Slice with_headroom(BufRef r, std::size_t headroom, std::size_t n) {
    return Slice{std::move(r), headroom, n};
  }

  bool empty() const noexcept { return len == 0; }

  ConstBytes bytes() const noexcept {
    return ConstBytes{ref.data() + off, len};
  }
  MutableBytes mutable_bytes() const noexcept {
    return MutableBytes{ref.data() + off, len};
  }

  std::size_t headroom() const noexcept { return off; }
  std::size_t trailroom() const noexcept {
    return ref ? ref.capacity() - off - len : 0;
  }

  /// Grows the slice frontward into its headroom (prepending a header
  /// without a copy). Requires n <= headroom().
  void expand_front(std::size_t n) noexcept {
    off -= static_cast<std::uint32_t>(n);
    len += static_cast<std::uint32_t>(n);
  }
  /// Grows the slice backward into its trailroom.
  void expand_back(std::size_t n) noexcept {
    len += static_cast<std::uint32_t>(n);
  }

  /// Sub-slice [pos, pos+n) sharing the same segment reference.
  Slice sub(std::size_t pos, std::size_t n) const {
    return Slice{ref, off + pos, n};
  }
};

/// Ordered slices forming one logical byte string.
class BufChain {
 public:
  BufChain() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t segment_count() const noexcept { return segs_.size(); }
  const Slice& segment(std::size_t i) const { return segs_.at(i); }
  Slice& segment(std::size_t i) { return segs_.at(i); }

  void clear() noexcept {
    segs_.clear();
    size_ = 0;
  }

  /// Appends a slice at the tail. Empty slices are dropped; a slice that
  /// continues the previous one inside the same segment is coalesced so
  /// fragment-sized arrivals don't balloon the iovec.
  void append(Slice s) {
    if (s.len == 0) return;
    size_ += s.len;
    if (!segs_.empty()) {
      Slice& back = segs_.back();
      if (back.ref.data() == s.ref.data() && back.off + back.len == s.off) {
        back.len += s.len;
        return;
      }
    }
    segs_.push_back(std::move(s));
  }

  /// Appends another chain's slices (consumed).
  void append(BufChain&& o) {
    for (Slice& s : o.segs_) append(std::move(s));
    o.clear();
  }

  /// Prepends a slice at the head.
  void prepend(Slice s) {
    if (s.len == 0) return;
    size_ += s.len;
    segs_.insert(segs_.begin(), std::move(s));
  }

  /// Drops the first n bytes (n <= size()).
  void trim_front(std::size_t n);
  /// Drops the last n bytes (n <= size()).
  void trim_back(std::size_t n);

  /// Splits off and returns the first `at` bytes; this chain keeps the
  /// rest. A segment straddling the cut is shared (two slices, one ref
  /// each) — no bytes move.
  BufChain split(std::size_t at);

  /// Calls fn(ConstBytes) for each slice in order — the gather view the
  /// fused kernels iterate without materializing a flat buffer.
  template <typename F>
  void for_each(F&& fn) const {
    for (const Slice& s : segs_) fn(s.bytes());
  }
  /// Mutable gather view (in-place decrypt).
  template <typename F>
  void for_each_mutable(F&& fn) {
    for (Slice& s : segs_) fn(s.mutable_bytes());
  }

  /// The iovec as plain spans (for APIs that want a materialized view).
  std::vector<ConstBytes> view() const {
    std::vector<ConstBytes> v;
    v.reserve(segs_.size());
    for (const Slice& s : segs_) v.push_back(s.bytes());
    return v;
  }

  /// Copies the chain's bytes into `dst` (dst.size() >= size()). One store
  /// pass; the CALLER charges the ledger (kernel discipline).
  void copy_out(MutableBytes dst) const;

  /// Reads [pos, pos+out.size()) into `out` (a ranged copy_out).
  void read(std::size_t pos, MutableBytes out) const;

  /// Flattens into a fresh owned buffer (the compatibility bridge to
  /// flat-buffer consumers). One load+store pass, caller charges.
  ByteBuffer flatten() const;

 private:
  std::vector<Slice> segs_;
  std::size_t size_ = 0;
};

}  // namespace ngp::buf
