#include "buf/chain_ops.h"

#include <array>

#include "checksum/internet.h"
#include "simd/dispatch.h"

namespace ngp::buf {

namespace {

/// Decrypts a segment that begins at ADU byte offset `pos`, absorbing the
/// plaintext into `acc`. Scalar prefix to the next 64-byte keystream block
/// boundary, then the fused tier kernel from block (pos+prefix)/64.
void decrypt_segment(const ChaChaKey& key, std::size_t pos, MutableBytes seg,
                     InternetChecksum& acc) {
  const simd::KernelTable& k = simd::kernels();
  std::size_t intra = pos % 64;
  std::size_t done = 0;
  if (intra != 0) {
    std::array<std::uint8_t, 64> ks;
    chacha20_block(key, static_cast<std::uint32_t>(pos / 64), ks);
    const std::size_t prefix = std::min<std::size_t>(64 - intra, seg.size());
    for (std::size_t i = 0; i < prefix; ++i) seg[i] ^= ks[intra + i];
    acc.add(seg.subspan(0, prefix));
    done = prefix;
  }
  if (done < seg.size()) {
    MutableBytes bulk = seg.subspan(done);
    const std::uint16_t sum = k.decrypt_internet_checksum(
        key, static_cast<std::uint32_t>((pos + done) / 64), bulk);
    acc.combine(sum, bulk.size());
  }
}

}  // namespace

std::uint16_t chain_internet_checksum(const BufChain& c) {
  const simd::KernelTable& k = simd::kernels();
  InternetChecksum acc;
  c.for_each([&](ConstBytes seg) {
    if (seg.empty()) return;
    acc.combine(k.internet_checksum(seg), seg.size());
  });
  return acc.finish();
}

std::uint16_t chain_decrypt_internet_checksum(const ChaChaKey& key,
                                              BufChain& c) {
  InternetChecksum acc;
  std::size_t pos = 0;
  c.for_each_mutable([&](MutableBytes seg) {
    if (!seg.empty()) decrypt_segment(key, pos, seg, acc);
    pos += seg.size();
  });
  return acc.finish();
}

void chain_chacha20_xor(const ChaChaKey& key, BufChain& c) {
  const simd::KernelTable& k = simd::kernels();
  std::size_t pos = 0;
  c.for_each_mutable([&](MutableBytes seg) {
    std::size_t intra = pos % 64;
    std::size_t done = 0;
    if (intra != 0 && !seg.empty()) {
      std::array<std::uint8_t, 64> ks;
      chacha20_block(key, static_cast<std::uint32_t>(pos / 64), ks);
      const std::size_t prefix = std::min<std::size_t>(64 - intra, seg.size());
      for (std::size_t i = 0; i < prefix; ++i) seg[i] ^= ks[intra + i];
      done = prefix;
    }
    if (done < seg.size()) {
      k.chacha20_xor(key, static_cast<std::uint32_t>((pos + done) / 64),
                     seg.subspan(done));
    }
    pos += seg.size();
  });
}

std::uint16_t chain_copy_internet_checksum(const BufChain& c,
                                           MutableBytes dst) {
  const simd::KernelTable& k = simd::kernels();
  InternetChecksum acc;
  std::size_t off = 0;
  c.for_each([&](ConstBytes seg) {
    if (seg.empty()) return;
    const std::uint16_t sum =
        k.copy_internet_checksum(seg, dst.subspan(off, seg.size()));
    acc.combine(sum, seg.size());
    off += seg.size();
  });
  return acc.finish();
}

}  // namespace ngp::buf
