#include "buf/chain_ops.h"

#include <array>

#include "checksum/internet.h"
#include "simd/dispatch.h"

namespace ngp::buf {

namespace {

/// Decrypts a segment that begins at ADU byte offset `pos`, absorbing the
/// plaintext into `acc`. Scalar prefix to the next 64-byte keystream block
/// boundary, then the fused tier kernel from block (pos+prefix)/64.
void decrypt_segment(const ChaChaKey& key, std::size_t pos, MutableBytes seg,
                     InternetChecksum& acc) {
  const simd::KernelTable& k = simd::kernels();
  std::size_t intra = pos % 64;
  std::size_t done = 0;
  if (intra != 0) {
    std::array<std::uint8_t, 64> ks;
    chacha20_block(key, static_cast<std::uint32_t>(pos / 64), ks);
    const std::size_t prefix = std::min<std::size_t>(64 - intra, seg.size());
    for (std::size_t i = 0; i < prefix; ++i) seg[i] ^= ks[intra + i];
    acc.add(seg.subspan(0, prefix));
    done = prefix;
  }
  if (done < seg.size()) {
    MutableBytes bulk = seg.subspan(done);
    const std::uint16_t sum = k.decrypt_internet_checksum(
        key, static_cast<std::uint32_t>((pos + done) / 64), bulk);
    acc.combine(sum, bulk.size());
  }
}

/// End of the byteswap region for an n-byte buffer, matching the flat
/// Byteswap32Stage tail rule exactly: whole 8-byte words swap both 32-bit
/// halves, an exactly-4-byte tail swaps, any other tail (1-3 or 5-7
/// bytes) passes through unchanged. Always a multiple of 4.
std::size_t swap_region_end(std::size_t n) {
  const std::size_t r = n % 8;
  return r == 4 ? n : n - r;
}

/// Swaps 32-bit units whose bytes may be scattered across segments: bytes
/// are fed in chain order, pointers to the first three bytes of the
/// in-flight unit are held until its fourth byte arrives, then the unit is
/// reversed through the pointers. Bytes at or past the swap-region end are
/// ignored (the flat kernels' pass-through tail).
struct SwapCursor {
  std::uint8_t* pend[3] = {};
  std::size_t filled = 0;

  void feed(MutableBytes bytes, std::size_t pos, std::size_t region_end) {
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      if (pos + i >= region_end) return;
      if (filled == 3) {
        std::swap(*pend[0], bytes[i]);
        std::swap(*pend[1], *pend[2]);
        filled = 0;
      } else {
        pend[filled++] = &bytes[i];
      }
    }
  }
};

/// XORs `bytes` (at chain byte offset `pos`) with the keystream, handling
/// 64-byte block crossings — the scalar path for sub-unit remainders the
/// fused kernels cannot take.
void scalar_decrypt(const ChaChaKey& key, std::size_t pos, MutableBytes bytes) {
  std::array<std::uint8_t, 64> ks;
  std::size_t have = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t p = pos + i;
    if (p / 64 != have) {
      have = p / 64;
      chacha20_block(key, static_cast<std::uint32_t>(have), ks);
    }
    bytes[i] ^= ks[p % 64];
  }
}

}  // namespace

std::uint16_t chain_internet_checksum(const BufChain& c) {
  const simd::KernelTable& k = simd::kernels();
  InternetChecksum acc;
  c.for_each([&](ConstBytes seg) {
    if (seg.empty()) return;
    acc.combine(k.internet_checksum(seg), seg.size());
  });
  return acc.finish();
}

std::uint16_t chain_decrypt_internet_checksum(const ChaChaKey& key,
                                              BufChain& c) {
  InternetChecksum acc;
  std::size_t pos = 0;
  c.for_each_mutable([&](MutableBytes seg) {
    if (!seg.empty()) decrypt_segment(key, pos, seg, acc);
    pos += seg.size();
  });
  return acc.finish();
}

void chain_chacha20_xor(const ChaChaKey& key, BufChain& c) {
  const simd::KernelTable& k = simd::kernels();
  std::size_t pos = 0;
  c.for_each_mutable([&](MutableBytes seg) {
    std::size_t intra = pos % 64;
    std::size_t done = 0;
    if (intra != 0 && !seg.empty()) {
      std::array<std::uint8_t, 64> ks;
      chacha20_block(key, static_cast<std::uint32_t>(pos / 64), ks);
      const std::size_t prefix = std::min<std::size_t>(64 - intra, seg.size());
      for (std::size_t i = 0; i < prefix; ++i) seg[i] ^= ks[intra + i];
      done = prefix;
    }
    if (done < seg.size()) {
      k.chacha20_xor(key, static_cast<std::uint32_t>((pos + done) / 64),
                     seg.subspan(done));
    }
    pos += seg.size();
  });
}

std::uint16_t chain_copy_internet_checksum(const BufChain& c,
                                           MutableBytes dst) {
  const simd::KernelTable& k = simd::kernels();
  InternetChecksum acc;
  std::size_t off = 0;
  c.for_each([&](ConstBytes seg) {
    if (seg.empty()) return;
    const std::uint16_t sum =
        k.copy_internet_checksum(seg, dst.subspan(off, seg.size()));
    acc.combine(sum, seg.size());
    off += seg.size();
  });
  return acc.finish();
}

void chain_byteswap32(BufChain& c) {
  const simd::KernelTable& k = simd::kernels();
  const std::size_t region_end = swap_region_end(c.size());
  SwapCursor cur;
  std::size_t pos = 0;
  c.for_each_mutable([&](MutableBytes seg) {
    std::size_t done = 0;
    // Scalar head: completes a unit straddling in from the previous segment.
    if (pos % 4 != 0 && !seg.empty()) {
      done = std::min<std::size_t>(4 - pos % 4, seg.size());
      cur.feed(seg.subspan(0, done), pos, region_end);
    }
    // Unit-aligned bulk inside the swap region: the tier kernel.
    const std::size_t in_region =
        region_end > pos + done ? region_end - (pos + done) : 0;
    const std::size_t bulk =
        std::min(seg.size() - done, in_region) & ~std::size_t{3};
    if (bulk != 0) {
      k.byteswap32(seg.subspan(done, bulk));
      done += bulk;
    }
    // Remainder: the head of a straddling unit and/or the pass-through tail.
    if (done < seg.size()) cur.feed(seg.subspan(done), pos + done, region_end);
    pos += seg.size();
  });
}

std::uint16_t chain_checksum_byteswap(BufChain& c) {
  const simd::KernelTable& k = simd::kernels();
  const std::size_t region_end = swap_region_end(c.size());
  InternetChecksum acc;
  SwapCursor cur;
  std::size_t pos = 0;
  c.for_each_mutable([&](MutableBytes seg) {
    std::size_t done = 0;
    if (pos % 4 != 0 && !seg.empty()) {
      done = std::min<std::size_t>(4 - pos % 4, seg.size());
      acc.add(seg.subspan(0, done));  // the checksum sees pre-swap bytes
      cur.feed(seg.subspan(0, done), pos, region_end);
    }
    const std::size_t in_region =
        region_end > pos + done ? region_end - (pos + done) : 0;
    const std::size_t bulk =
        std::min(seg.size() - done, in_region) & ~std::size_t{3};
    if (bulk != 0) {
      MutableBytes body = seg.subspan(done, bulk);
      acc.combine(k.checksum_byteswap(body), body.size());
      done += bulk;
    }
    if (done < seg.size()) {
      MutableBytes rest = seg.subspan(done);
      acc.add(rest);
      cur.feed(rest, pos + done, region_end);
    }
    pos += seg.size();
  });
  return acc.finish();
}

std::uint16_t chain_decrypt_checksum_byteswap(const ChaChaKey& key,
                                              BufChain& c) {
  const simd::KernelTable& k = simd::kernels();
  const std::size_t region_end = swap_region_end(c.size());
  InternetChecksum acc;
  SwapCursor cur;
  std::size_t pos = 0;
  c.for_each_mutable([&](MutableBytes seg) {
    std::size_t done = 0;
    // Scalar keystream prefix to the next 64-byte block boundary (which is
    // also a 4-byte swap boundary, so the fused kernel can take over).
    if (pos % 64 != 0 && !seg.empty()) {
      done = std::min<std::size_t>(64 - pos % 64, seg.size());
      MutableBytes prefix = seg.subspan(0, done);
      scalar_decrypt(key, pos, prefix);
      acc.add(prefix);
      cur.feed(prefix, pos, region_end);
    }
    const std::size_t in_region =
        region_end > pos + done ? region_end - (pos + done) : 0;
    const std::size_t bulk =
        std::min(seg.size() - done, in_region) & ~std::size_t{3};
    if (bulk != 0) {
      MutableBytes body = seg.subspan(done, bulk);
      acc.combine(k.decrypt_checksum_byteswap(
                      key, static_cast<std::uint32_t>((pos + done) / 64), body),
                  body.size());
      done += bulk;
    }
    if (done < seg.size()) {
      MutableBytes rest = seg.subspan(done);
      scalar_decrypt(key, pos + done, rest);
      acc.add(rest);
      cur.feed(rest, pos + done, region_end);
    }
    pos += seg.size();
  });
  return acc.finish();
}

}  // namespace ngp::buf
