#include "buf/chain.h"

#include <cassert>

#include "simd/dispatch.h"

namespace ngp::buf {

void BufChain::trim_front(std::size_t n) {
  assert(n <= size_);
  size_ -= n;
  std::size_t drop = 0;
  while (n > 0) {
    Slice& s = segs_[drop];
    if (s.len <= n) {
      n -= s.len;
      ++drop;
    } else {
      s.off += static_cast<std::uint32_t>(n);
      s.len -= static_cast<std::uint32_t>(n);
      n = 0;
    }
  }
  if (drop > 0) segs_.erase(segs_.begin(), segs_.begin() + drop);
}

void BufChain::trim_back(std::size_t n) {
  assert(n <= size_);
  size_ -= n;
  while (n > 0) {
    Slice& s = segs_.back();
    if (s.len <= n) {
      n -= s.len;
      segs_.pop_back();
    } else {
      s.len -= static_cast<std::uint32_t>(n);
      n = 0;
    }
  }
}

BufChain BufChain::split(std::size_t at) {
  assert(at <= size_);
  BufChain head;
  std::size_t need = at;
  std::size_t i = 0;
  while (need > 0) {
    Slice& s = segs_[i];
    if (s.len <= need) {
      need -= s.len;
      head.append(std::move(s));
      ++i;
    } else {
      // Straddling segment: both chains reference it, no bytes move.
      head.append(s.sub(0, need));
      s.off += static_cast<std::uint32_t>(need);
      s.len -= static_cast<std::uint32_t>(need);
      need = 0;
    }
  }
  if (i > 0) segs_.erase(segs_.begin(), segs_.begin() + i);
  size_ -= at;
  return head;
}

void BufChain::copy_out(MutableBytes dst) const {
  assert(dst.size() >= size_);
  const simd::KernelTable& k = simd::kernels();
  std::size_t off = 0;
  for (const Slice& s : segs_) {
    k.copy(s.bytes(), dst.subspan(off, s.len));
    off += s.len;
  }
}

void BufChain::read(std::size_t pos, MutableBytes out) const {
  assert(pos + out.size() <= size_);
  const simd::KernelTable& k = simd::kernels();
  std::size_t want = out.size();
  std::size_t written = 0;
  std::size_t seg_start = 0;
  for (const Slice& s : segs_) {
    const std::size_t seg_end = seg_start + s.len;
    if (want == 0) break;
    if (seg_end > pos) {
      const std::size_t from = pos > seg_start ? pos - seg_start : 0;
      const std::size_t take = std::min(want, s.len - from);
      k.copy(s.bytes().subspan(from, take), out.subspan(written, take));
      written += take;
      pos += take;
      want -= take;
    }
    seg_start = seg_end;
  }
  assert(want == 0);
}

ByteBuffer BufChain::flatten() const {
  ByteBuffer out(size_);
  copy_out(out.span());
  return out;
}

}  // namespace ngp::buf
