#include "buf/pool.h"

#include <cassert>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define NGP_BUF_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NGP_BUF_ASAN 1
#endif
#endif

#ifdef NGP_BUF_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace ngp::buf {

namespace {

constexpr std::uint32_t kHeapClass = 0xffffffffu;
constexpr std::size_t kSlabAlign = 64;

/// Guards every pool's thread-cache registry (registration, orphaning at
/// pool destruction, flushing at thread exit). One global mutex: these are
/// cold paths — a cache is created once per (thread, pool) pair.
std::mutex& tls_registry_mutex() {
  static std::mutex mu;
  return mu;
}

struct AlignedDelete {
  void operator()(std::uint8_t* p) const noexcept {
    ::operator delete[](p, std::align_val_t{kSlabAlign});
  }
};
using SlabStorage = std::unique_ptr<std::uint8_t[], AlignedDelete>;

SlabStorage make_slab_storage(std::size_t bytes) {
  return SlabStorage(static_cast<std::uint8_t*>(
      ::operator new[](bytes, std::align_val_t{kSlabAlign})));
}

constexpr std::size_t round_up(std::size_t n, std::size_t a) noexcept {
  return (n + a - 1) / a * a;
}

}  // namespace

struct BufferPool::SizeClass {
  std::size_t capacity = 0;
  std::mutex mu;
  detail::Segment* free_head = nullptr;  // guarded by mu
  // Slab storage + header arrays. unique_ptr keeps addresses stable while
  // the vectors grow; Segment holds an atomic and must never move.
  std::vector<SlabStorage> slabs;
  std::vector<std::unique_ptr<std::vector<detail::Segment>>> headers;
};

struct BufferPool::ThreadCache {
  BufferPool* pool = nullptr;  // guarded by tls_registry_mutex(); nullptr
                               // once the pool orphaned this cache
  std::vector<std::vector<detail::Segment*>> free;  // per class, this thread
  ~ThreadCache() {
    std::lock_guard lk(tls_registry_mutex());
    if (pool == nullptr) return;  // pool died first; segments already freed
    for (std::size_t ci = 0; ci < free.size(); ++ci) {
      SizeClass& sc = *pool->classes_[ci];
      std::lock_guard slk(sc.mu);
      for (detail::Segment* s : free[ci]) {
        s->next = sc.free_head;
        sc.free_head = s;
      }
    }
    auto& reg = pool->caches_;
    for (auto it = reg.begin(); it != reg.end(); ++it) {
      if (*it == this) {
        reg.erase(it);
        break;
      }
    }
  }
};

void BufferPool::poison(detail::Segment* seg) noexcept {
#ifdef NGP_BUF_ASAN
  __asan_poison_memory_region(seg->data, seg->capacity);
#else
  (void)seg;
#endif
}

void BufferPool::unpoison(detail::Segment* seg) noexcept {
#ifdef NGP_BUF_ASAN
  __asan_unpoison_memory_region(seg->data, seg->capacity);
#else
  (void)seg;
#endif
}

BufferPool::BufferPool(PoolConfig cfg) : cfg_(std::move(cfg)) {
  assert(!cfg_.size_classes.empty());
  classes_.reserve(cfg_.size_classes.size());
  for (std::size_t cap : cfg_.size_classes) {
    auto sc = std::make_unique<SizeClass>();
    sc->capacity = cap;
    classes_.push_back(std::move(sc));
  }
}

BufferPool::~BufferPool() {
  assert(live_.load(std::memory_order_relaxed) == 0 &&
         "BufferPool destroyed with live segments");
  {
    // Orphan every per-thread cache so late thread exits skip the flush.
    std::lock_guard lk(tls_registry_mutex());
    for (ThreadCache* c : caches_) c->pool = nullptr;
    caches_.clear();
  }
  // Unpoison everything before the slabs go back to the allocator.
  for (auto& sc : classes_) {
    for (auto& hdrs : sc->headers) {
      for (detail::Segment& s : *hdrs) unpoison(&s);
    }
  }
}

void BufferPool::carve_slab(std::size_t ci) {
  SizeClass& sc = *classes_[ci];
  const std::size_t stride = round_up(sc.capacity, kSlabAlign);
  const std::size_t n = cfg_.slab_segments;
  SlabStorage storage = make_slab_storage(stride * n);
  auto hdrs = std::make_unique<std::vector<detail::Segment>>(n);
  for (std::size_t i = 0; i < n; ++i) {
    detail::Segment& s = (*hdrs)[i];
    s.pool = this;
    s.class_index = static_cast<std::uint32_t>(ci);
    s.capacity = static_cast<std::uint32_t>(sc.capacity);
    s.data = storage.get() + i * stride;
    poison(&s);
    s.next = sc.free_head;
    sc.free_head = &s;
  }
  sc.slabs.push_back(std::move(storage));
  sc.headers.push_back(std::move(hdrs));
  slab_allocs_.fetch_add(1, std::memory_order_relaxed);
  segments_total_.fetch_add(n, std::memory_order_relaxed);
  bytes_reserved_.fetch_add(stride * n, std::memory_order_relaxed);
}

detail::Segment* BufferPool::pop_central(std::size_t ci) {
  SizeClass& sc = *classes_[ci];
  std::lock_guard lk(sc.mu);
  if (sc.free_head == nullptr) carve_slab(ci);
  detail::Segment* s = sc.free_head;
  sc.free_head = s->next;
  s->next = nullptr;
  return s;
}

BufferPool::ThreadCache* BufferPool::cache_for_this_thread() {
  static thread_local std::vector<std::unique_ptr<ThreadCache>> caches;
  for (auto& c : caches) {
    if (c->pool == this) return c.get();
  }
  auto c = std::make_unique<ThreadCache>();
  c->pool = this;
  c->free.resize(classes_.size());
  {
    std::lock_guard lk(tls_registry_mutex());
    caches_.push_back(c.get());
  }
  caches.push_back(std::move(c));
  return caches.back().get();
}

BufRef BufferPool::alloc(std::size_t bytes) {
  if (bytes == 0) return BufRef{};
  std::size_t ci = classes_.size();
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i]->capacity >= bytes) {
      ci = i;
      break;
    }
  }
  allocs_.fetch_add(1, std::memory_order_relaxed);
  live_.fetch_add(1, std::memory_order_relaxed);

  if (ci == classes_.size()) {
    // Oversize: one-off heap segment, refcounted and freed on last release.
    heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    auto* s = new detail::Segment;
    s->pool = this;
    s->class_index = kHeapClass;
    s->capacity = static_cast<std::uint32_t>(bytes);
    s->data = static_cast<std::uint8_t*>(
        ::operator new[](bytes, std::align_val_t{kSlabAlign}));
    s->refs.store(1, std::memory_order_relaxed);
    return BufRef{s};
  }

  detail::Segment* s = nullptr;
  ThreadCache* tc = cache_for_this_thread();
  auto& local = tc->free[ci];
  if (!local.empty()) {
    s = local.back();
    local.pop_back();
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    s = pop_central(ci);
  }
  unpoison(s);
  s->refs.store(1, std::memory_order_relaxed);
  return BufRef{s};
}

void BufferPool::recycle(detail::Segment* seg) noexcept {
  live_.fetch_sub(1, std::memory_order_relaxed);
  recycles_.fetch_add(1, std::memory_order_relaxed);
  if (seg->class_index == kHeapClass) {
    ::operator delete[](seg->data, std::align_val_t{kSlabAlign});
    delete seg;
    return;
  }
  poison(seg);
  const std::size_t ci = seg->class_index;
  ThreadCache* tc = cache_for_this_thread();
  auto& local = tc->free[ci];
  if (local.size() < cfg_.thread_cache_segments) {
    local.push_back(seg);
    return;
  }
  cross_thread_recycles_.fetch_add(1, std::memory_order_relaxed);
  SizeClass& sc = *classes_[ci];
  std::lock_guard lk(sc.mu);
  seg->next = sc.free_head;
  sc.free_head = seg;
}

void BufRef::release() noexcept {
  if (seg_ == nullptr) return;
  // acq_rel: the last releaser must observe every write the other holders
  // made to the segment before they dropped their references.
  if (seg_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    seg_->pool->recycle(seg_);
  }
  seg_ = nullptr;
}

PoolStats BufferPool::stats() const noexcept {
  PoolStats s;
  s.allocs = allocs_.load(std::memory_order_relaxed);
  s.heap_fallbacks = heap_fallbacks_.load(std::memory_order_relaxed);
  s.recycles = recycles_.load(std::memory_order_relaxed);
  s.cross_thread_recycles =
      cross_thread_recycles_.load(std::memory_order_relaxed);
  s.slab_allocs = slab_allocs_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.segments_live = live_.load(std::memory_order_relaxed);
  s.segments_total = segments_total_.load(std::memory_order_relaxed);
  s.bytes_reserved = bytes_reserved_.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::export_metrics(obs::MetricSink& sink) const {
  const PoolStats s = stats();
  sink.counter("allocs", s.allocs);
  sink.counter("heap_fallbacks", s.heap_fallbacks);
  sink.counter("recycles", s.recycles);
  sink.counter("cross_thread_recycles", s.cross_thread_recycles);
  sink.counter("slab_allocs", s.slab_allocs);
  sink.counter("cache_hits", s.cache_hits);
  sink.gauge("segments_live", static_cast<double>(s.segments_live));
  sink.gauge("segments_total", static_cast<double>(s.segments_total));
  sink.gauge("bytes_reserved", static_cast<double>(s.bytes_reserved));
}

}  // namespace ngp::buf
