// ingress.h — the "current ingress frame" context (ngp::buf).
//
// Every frame handler in the repo is `std::function<void(ConstBytes)>`:
// links, faulty paths, relays and the sessiond dispatcher all forward a
// borrowed span. Threading a pool reference through each signature would
// touch every intermediary for one consumer, so a pool-receiving link
// instead PUBLISHES the segment backing the span for the duration of the
// handler call, via this RAII scope on the delivering thread.
//
// A downstream consumer (AlfReceiver) that wants to keep bytes past the
// handler return checks whether the span it was handed lies INSIDE the
// published segment (BufRef::contains). If yes it takes its own reference
// — zero copy; if no (an intermediary re-framed or mutated a copy, or no
// pool is wired) it falls back to copying, which is always correct. That
// containment test is what lets FaultyPath corrupt a COPY of a frame
// without any zero-copy machinery noticing or caring.
#pragma once

#include "buf/chain.h"

namespace ngp::buf {

/// Scope guard: publishes `s` as the current ingress frame on this thread.
/// Nests (an inner scope shadows, then restores, the outer one).
class IngressFrame {
 public:
  explicit IngressFrame(const Slice& s) noexcept : prev_(current_) {
    current_ = &s;
  }
  ~IngressFrame() { current_ = prev_; }
  IngressFrame(const IngressFrame&) = delete;
  IngressFrame& operator=(const IngressFrame&) = delete;

  /// The slice backing the frame currently being delivered on this thread,
  /// or nullptr outside any ingress scope.
  static const Slice* current() noexcept { return current_; }

 private:
  static inline thread_local const Slice* current_ = nullptr;
  const Slice* prev_;
};

}  // namespace ngp::buf
