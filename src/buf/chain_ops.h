// chain_ops.h — fused manipulation passes over BufChains (ngp::buf).
//
// The §4 claim, applied to the gather view: one logical pass over a chain
// costs the same memory traffic as one pass over a flat buffer — the
// segment walk only redirects the pointers. Each helper runs the active
// SIMD tier's fused kernel per segment and folds the per-segment Internet
// sums with InternetChecksum::combine, which tracks byte parity so odd
// segment lengths fold correctly (tested against the flat scalar reference
// across every tier in buf_test).
//
// ChaCha20 note: the cipher's keystream is positional. A segment that
// starts at ADU byte offset `pos` is decrypted with a scalar prefix up to
// the next 64-byte keystream block boundary, then the fused kernel runs
// from block pos/64 — bit-identical to decrypting the flat buffer.
//
// Ledger discipline matches simd/dispatch.h: these helpers never touch a
// CostAccount; CALLERS charge the analytic pass counts, so recorded costs
// stay tier- and segmentation-independent.
#pragma once

#include <cstdint>

#include "buf/chain.h"
#include "crypto/chacha20.h"

namespace ngp::buf {

/// RFC 1071 checksum of the chain's bytes — identical to
/// internet_checksum(flattened chain). One load-only pass.
std::uint16_t chain_internet_checksum(const BufChain& c);

/// ChaCha20-decrypts the chain in place (keystream block counter 0 at
/// chain byte 0) while computing the Internet checksum of the PLAINTEXT in
/// the same pass. One load+store pass.
std::uint16_t chain_decrypt_internet_checksum(const ChaChaKey& key,
                                              BufChain& c);

/// ChaCha20 XOR in place, no checksum (the layered-mode pass).
void chain_chacha20_xor(const ChaChaKey& key, BufChain& c);

/// Copies the chain into `dst` (dst.size() >= c.size()) while checksumming
/// the copied bytes in the same pass — the final-placement delivery move.
std::uint16_t chain_copy_internet_checksum(const BufChain& c,
                                           MutableBytes dst);

/// Byte-swaps each 32-bit unit of the chain in place (the fused
/// presentation-decode stage of a compiled plan, DESIGN.md §13), counted
/// from chain byte 0 so units that straddle segment boundaries swap
/// correctly. Matches the flat byteswap32 kernel's tail rule exactly:
/// whole 8-byte words and an exactly-4-byte tail swap, any other tail
/// passes through — bit-identical to flatten + byteswap32 + scatter.
void chain_byteswap32(BufChain& c);

/// chain_internet_checksum + chain_byteswap32 in ONE pass: the checksum
/// absorbs the pre-swap wire bytes (so the check still covers what was
/// sent), the swap lands in place. One load+store pass.
std::uint16_t chain_checksum_byteswap(BufChain& c);

/// Decrypt + checksum(plaintext) + byteswap32 fused over the gather view —
/// the chain twin of the decrypt_checksum_byteswap dispatch kernel
/// (keystream block counter 0 at chain byte 0). One load+store pass.
std::uint16_t chain_decrypt_checksum_byteswap(const ChaChaKey& key,
                                              BufChain& c);

}  // namespace ngp::buf
