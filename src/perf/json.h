// json.h — a minimal strict JSON reader for the perf tooling (ngp::perf).
//
// The bench side WRITES JSON with a deterministic one-pass builder
// (bench_util JsonWriter); nothing in the repo could READ it back, which
// is what the trajectory tool needs: parse every checked-in BENCH_*.json
// baseline, validate it against the canonical schema, and diff a fresh
// run against it. This parser covers exactly RFC 8259 JSON — objects
// (insertion-ordered, duplicate keys rejected), arrays, strings with the
// standard escapes (\uXXXX decoded to UTF-8), numbers as double, true /
// false / null — with a recursion-depth bound so a hostile file cannot
// blow the stack. No writer lives here; the report writers stay with the
// benches.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ngp::perf::json {

class Value;

/// Object members in insertion order (deterministic re-render / iteration).
using Members = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool as_bool() const noexcept { return bool_; }
  double as_number() const noexcept { return num_; }
  const std::string& as_string() const noexcept { return str_; }
  const std::vector<Value>& items() const noexcept { return arr_; }
  const Members& members() const noexcept { return obj_; }

  /// Object member by key; nullptr when absent or not an object.
  const Value* get(std::string_view key) const noexcept;

  // Typed lookups with fallbacks — the schema-validation idiom.
  double number_or(std::string_view key, double fallback) const noexcept;
  bool bool_or(std::string_view key, bool fallback) const noexcept;
  std::string string_or(std::string_view key, std::string fallback) const;

  // Construction helpers (parser + tests).
  static Value null() { return Value(); }
  static Value boolean(bool b);
  static Value number(double d);
  static Value string(std::string s);
  static Value array(std::vector<Value> items);
  static Value object(Members members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  Members obj_;
};

/// Strict parse of exactly one JSON document (trailing whitespace allowed,
/// trailing garbage is an error). On failure returns false and, when `err`
/// is non-null, a one-line diagnostic with the byte offset.
bool parse(std::string_view text, Value& out, std::string* err = nullptr);

/// Reads and parses a file. Missing/unreadable files report through `err`.
bool parse_file(const std::string& path, Value& out, std::string* err = nullptr);

}  // namespace ngp::perf::json
