#include "perf/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ngp::perf::json {

const Value* Value::get(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const noexcept {
  const Value* v = get(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

bool Value::bool_or(std::string_view key, bool fallback) const noexcept {
  const Value* v = get(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string Value::string_or(std::string_view key, std::string fallback) const {
  const Value* v = get(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : std::move(fallback);
}

Value Value::boolean(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}
Value Value::number(double d) {
  Value v;
  v.type_ = Type::kNumber;
  v.num_ = d;
  return v;
}
Value Value::string(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}
Value Value::array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kArray;
  v.arr_ = std::move(items);
  return v;
}
Value Value::object(Members members) {
  Value v;
  v.type_ = Type::kObject;
  v.obj_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent parser over a string_view. Positions are byte
/// offsets; errors carry the offset so a bad baseline points at itself.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool run(Value& out, std::string* err) {
    skip_ws();
    if (!parse_value(out, 0)) {
      fail_out(err);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      err_ = "trailing garbage after document";
      err_at_ = pos_;
      fail_out(err);
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void fail_out(std::string* err) const {
    if (err == nullptr) return;
    char buf[160];
    std::snprintf(buf, sizeof buf, "JSON parse error at byte %zu: %s", err_at_,
                  err_.empty() ? "malformed document" : err_.c_str());
    *err = buf;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool set_err(const char* msg) {
    if (err_.empty()) {
      err_ = msg;
      err_at_ = pos_;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return set_err("bad literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return set_err("nesting too deep");
    if (pos_ >= text_.size()) return set_err("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Value::string(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        out = Value::boolean(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = Value::boolean(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = Value::null();
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out, int depth) {
    ++pos_;  // '{'
    Members members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out = Value::object(std::move(members));
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return set_err("expected key");
      std::string key;
      if (!parse_string(key)) return false;
      for (const auto& [k, v] : members) {
        (void)v;
        if (k == key) return set_err("duplicate object key");
      }
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return set_err("expected ':'");
      ++pos_;
      skip_ws();
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return set_err("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        out = Value::object(std::move(members));
        return true;
      }
      return set_err("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out, int depth) {
    ++pos_;  // '['
    std::vector<Value> items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out = Value::array(std::move(items));
      return true;
    }
    for (;;) {
      skip_ws();
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      items.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return set_err("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        out = Value::array(std::move(items));
        return true;
      }
      return set_err("expected ',' or ']'");
    }
  }

  static void append_utf8(std::string& s, std::uint32_t cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return set_err("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return set_err("bad \\u escape digit");
      }
    }
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return set_err("raw control char");
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return set_err("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // surrogate pair
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              std::uint32_t lo = 0;
              if (!parse_hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) return set_err("bad low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return set_err("lone high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return set_err("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return set_err("unknown escape");
      }
    }
    return set_err("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // Integer part: one leading zero or a nonzero digit run.
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else {
      const std::size_t digits = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == digits) {
        pos_ = start;
        return set_err("expected value");
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t digits = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == digits) return set_err("digits required after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      const std::size_t digits = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      if (pos_ == digits) return set_err("digits required in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double v = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(v)) return set_err("number out of range");
    out = Value::number(v);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string err_;
  std::size_t err_at_ = 0;
};

}  // namespace

bool parse(std::string_view text, Value& out, std::string* err) {
  return Parser(text).run(out, err);
}

bool parse_file(const std::string& path, Value& out, std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    if (err != nullptr) *err = "read error on " + path;
    return false;
  }
  std::string perr;
  if (!parse(text, out, &perr)) {
    if (err != nullptr) *err = path + ": " + perr;
    return false;
  }
  return true;
}

}  // namespace ngp::perf::json
