#include "perf/schema.h"

#include <cmath>
#include <set>

namespace ngp::perf {

namespace {

void err(ValidationResult& r, std::string msg) { r.errors.push_back(std::move(msg)); }

bool valid_name(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

ValidationResult validate_report(const json::Value& doc, const ValidateOptions& opt) {
  ValidationResult r;
  if (!doc.is_object()) {
    err(r, "report is not a JSON object");
    return r;
  }

  // schema tag
  const json::Value* schema = doc.get("schema");
  if (schema == nullptr || !schema->is_string()) {
    err(r, "missing string 'schema'");
  } else if (schema->as_string() != kBenchSchemaId) {
    err(r, "schema drift: got '" + schema->as_string() + "', want '" +
               kBenchSchemaId + "'");
  }

  // bench name
  const json::Value* bench = doc.get("bench");
  if (bench == nullptr || !bench->is_string() || !valid_name(bench->as_string())) {
    err(r, "missing or malformed 'bench' (want non-empty [a-z0-9_]+)");
  } else if (!opt.expect_bench.empty() && bench->as_string() != opt.expect_bench) {
    err(r, "bench name '" + bench->as_string() + "' does not match expected '" +
               opt.expect_bench + "'");
  }

  // seed
  const json::Value* seed = doc.get("seed");
  if (seed == nullptr || !seed->is_number() || seed->as_number() < 0 ||
      seed->as_number() != std::floor(seed->as_number())) {
    err(r, "missing or non-integer 'seed'");
  }

  // smoke
  const json::Value* smoke = doc.get("smoke");
  if (smoke == nullptr || !smoke->is_bool()) {
    err(r, "missing bool 'smoke'");
  } else if (opt.forbid_smoke && smoke->as_bool()) {
    err(r, "smoke-run report is not a valid trajectory point");
  }

  // metrics
  std::set<std::string> metric_names;
  const json::Value* metrics = doc.get("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    err(r, "missing object 'metrics'");
  } else {
    if (metrics->members().empty()) err(r, "'metrics' is empty");
    for (const auto& [name, v] : metrics->members()) {
      if (!v.is_number() || !std::isfinite(v.as_number())) {
        err(r, "metric '" + name + "' is not a finite number");
      }
      metric_names.insert(name);
    }
  }

  // tracked
  const json::Value* tracked = doc.get("tracked");
  if (tracked == nullptr || !tracked->is_array()) {
    err(r, "missing array 'tracked'");
  } else {
    std::set<std::string> seen;
    for (const json::Value& t : tracked->items()) {
      if (!t.is_object()) {
        err(r, "tracked entry is not an object");
        continue;
      }
      const json::Value* m = t.get("metric");
      if (m == nullptr || !m->is_string()) {
        err(r, "tracked entry missing string 'metric'");
        continue;
      }
      const std::string& name = m->as_string();
      if (!seen.insert(name).second) err(r, "tracked metric '" + name + "' repeated");
      if (metrics != nullptr && metrics->is_object() && !metric_names.count(name)) {
        err(r, "tracked metric '" + name + "' absent from 'metrics'");
      }
      const json::Value* hib = t.get("higher_is_better");
      if (hib == nullptr || !hib->is_bool()) {
        err(r, "tracked '" + name + "' missing bool 'higher_is_better'");
      }
      const json::Value* tol = t.get("tolerance_frac");
      if (tol == nullptr || !tol->is_number() || tol->as_number() < 0.0 ||
          tol->as_number() >= 1.0) {
        err(r, "tracked '" + name + "' tolerance_frac not in [0, 1)");
      }
    }
  }

  // holds + all_holds_ok
  bool holds_and = true;
  const json::Value* holds = doc.get("holds");
  if (holds == nullptr || !holds->is_array()) {
    err(r, "missing array 'holds'");
  } else {
    std::set<std::string> seen;
    for (const json::Value& h : holds->items()) {
      if (!h.is_object()) {
        err(r, "holds entry is not an object");
        continue;
      }
      const json::Value* n = h.get("name");
      const json::Value* ok = h.get("ok");
      if (n == nullptr || !n->is_string() || ok == nullptr || !ok->is_bool()) {
        err(r, "holds entry missing string 'name' or bool 'ok'");
        continue;
      }
      if (!seen.insert(n->as_string()).second) {
        err(r, "hold '" + n->as_string() + "' repeated");
      }
      holds_and = holds_and && ok->as_bool();
    }
  }
  const json::Value* all_ok = doc.get("all_holds_ok");
  if (all_ok == nullptr || !all_ok->is_bool()) {
    err(r, "missing bool 'all_holds_ok'");
  } else if (holds != nullptr && holds->is_array() &&
             all_ok->as_bool() != holds_and) {
    err(r, "'all_holds_ok' disagrees with the AND of holds[].ok");
  }

  // detail
  const json::Value* detail = doc.get("detail");
  if (detail == nullptr || !detail->is_object()) {
    err(r, "missing object 'detail'");
  }

  return r;
}

std::vector<TrackedMetric> tracked_metrics(const json::Value& doc) {
  std::vector<TrackedMetric> out;
  const json::Value* tracked = doc.get("tracked");
  if (tracked == nullptr || !tracked->is_array()) return out;
  for (const json::Value& t : tracked->items()) {
    if (!t.is_object()) continue;
    TrackedMetric m;
    m.metric = t.string_or("metric", "");
    if (m.metric.empty()) continue;
    m.higher_is_better = t.bool_or("higher_is_better", true);
    m.tolerance_frac = t.number_or("tolerance_frac", 0.0);
    out.push_back(std::move(m));
  }
  return out;
}

TrajectoryDiff compare_reports(const json::Value& baseline,
                               const json::Value& current) {
  TrajectoryDiff d;
  d.bench = baseline.string_or("bench", "");
  const std::string cur_bench = current.string_or("bench", "");
  if (d.bench != cur_bench) {
    d.errors.push_back("bench mismatch: baseline '" + d.bench + "' vs current '" +
                       cur_bench + "'");
    return d;
  }
  d.current_holds_ok = current.bool_or("all_holds_ok", false);

  const json::Value* base_metrics = baseline.get("metrics");
  const json::Value* cur_metrics = current.get("metrics");
  for (const TrackedMetric& t : tracked_metrics(baseline)) {
    MetricDelta m;
    m.metric = t.metric;
    m.higher_is_better = t.higher_is_better;
    m.tolerance_frac = t.tolerance_frac;
    m.baseline =
        base_metrics != nullptr ? base_metrics->number_or(t.metric, 0.0) : 0.0;
    const json::Value* cur =
        cur_metrics != nullptr ? cur_metrics->get(t.metric) : nullptr;
    if (cur == nullptr || !cur->is_number()) {
      m.missing = true;
      d.deltas.push_back(std::move(m));
      continue;
    }
    m.current = cur->as_number();
    const double mag = std::fabs(m.baseline);
    m.change_frac = mag > 0.0 ? (m.current - m.baseline) / mag
                              : (m.current == m.baseline ? 0.0
                                 : m.current > m.baseline ? 1.0
                                                          : -1.0);
    const double degraded = t.higher_is_better ? -m.change_frac : m.change_frac;
    m.regression = degraded > t.tolerance_frac;
    m.improvement = -degraded > t.tolerance_frac;
    d.deltas.push_back(std::move(m));
  }
  return d;
}

}  // namespace ngp::perf
