#include "perf/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

namespace ngp::perf {

const char* perturbation_kind_name(PerturbationInfo::Kind k) noexcept {
  switch (k) {
    case PerturbationInfo::Kind::kCompute: return "compute";
    case PerturbationInfo::Kind::kMemory: return "memory";
    case PerturbationInfo::Kind::kConcurrency: return "concurrency";
  }
  return "unknown";
}

namespace {

RunMeasurement best_of(Workload& w, std::size_t offered,
                       const std::string& perturbation, int repeats) {
  RunMeasurement best;
  for (int i = 0; i < std::max(1, repeats); ++i) {
    RunMeasurement m = w.run(offered, perturbation);
    if (i == 0 || m.mbps() > best.mbps()) best = std::move(m);
  }
  return best;
}

std::map<std::string, double> ledger_diff(
    const std::map<std::string, double>& base,
    const std::map<std::string, double>& perturbed) {
  std::map<std::string, double> out;
  std::set<std::string> keys;
  for (const auto& [k, v] : base) {
    (void)v;
    keys.insert(k);
  }
  for (const auto& [k, v] : perturbed) {
    (void)v;
    keys.insert(k);
  }
  for (const auto& k : keys) {
    const auto b = base.find(k);
    const auto p = perturbed.find(k);
    const double bv = b != base.end() ? b->second : 0.0;
    const double pv = p != perturbed.end() ? p->second : 0.0;
    if (pv != bv) out[k] = pv - bv;
  }
  return out;
}

}  // namespace

SaturationResult find_saturation(Workload& w, const SaturationOptions& opt,
                                 const std::string& perturbation) {
  SaturationResult r;
  std::size_t offered = std::max<std::size_t>(1, opt.offered_start);
  double prev_mbps = 0.0;
  while (offered <= opt.offered_max) {
    RunMeasurement m = best_of(w, offered, perturbation, opt.repeats);
    const double mbps = m.mbps();
    r.steps.push_back({offered, mbps});
    if (mbps > r.sat_mbps) {
      r.sat_mbps = mbps;
      r.offered_at_saturation = offered;
      r.at_saturation = std::move(m);
    }
    // Saturated once one more step stops paying: marginal gain over the
    // previous step under plateau_frac (or throughput actually fell).
    if (prev_mbps > 0.0 && mbps < prev_mbps * (1.0 + opt.plateau_frac)) break;
    prev_mbps = mbps;
    const double next = static_cast<double>(offered) * opt.step_factor;
    const auto stepped = static_cast<std::size_t>(next);
    if (stepped <= offered) break;  // step_factor <= 1 guard
    offered = stepped;
  }
  return r;
}

PerfReport diagnose(Workload& w, const SaturationOptions& opt) {
  PerfReport report;
  report.workload = w.name();
  report.baseline = find_saturation(w, opt);
  report.baseline_slo_failures = report.baseline.at_saturation.slo_failures;

  const RunMeasurement& base = report.baseline.at_saturation;
  const double base_mbps = report.baseline.sat_mbps;
  const std::size_t offered = report.baseline.offered_at_saturation;

  for (const PerturbationInfo& p : w.perturbations()) {
    RunMeasurement m = best_of(w, offered, p.name, opt.repeats);
    OperatorDelta d;
    d.op = p;
    d.baseline_mbps = base_mbps;
    d.perturbed_mbps = m.mbps();
    d.delta_mbps = base_mbps - d.perturbed_mbps;
    d.delta_frac = base_mbps > 0.0 ? d.delta_mbps / base_mbps : 0.0;
    d.ledger_delta = ledger_diff(base.ledger, m.ledger);
    d.slo_failures = std::move(m.slo_failures);
    d.output_hash_matches = m.output_hash == base.output_hash;
    report.ranked.push_back(std::move(d));
  }

  std::stable_sort(report.ranked.begin(), report.ranked.end(),
                   [](const OperatorDelta& a, const OperatorDelta& b) {
                     if (a.delta_frac != b.delta_frac)
                       return a.delta_frac > b.delta_frac;
                     return a.op.name < b.op.name;
                   });
  return report;
}

std::string PerfReport::render_table() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "workload %s: saturation %.2f Mb/s at offered=%zu (%zu steps)\n",
                workload.c_str(), baseline.sat_mbps,
                baseline.offered_at_saturation, baseline.steps.size());
  out += line;
  if (!baseline_slo_failures.empty()) {
    out += "baseline SLO failures:";
    for (const auto& s : baseline_slo_failures) out += " " + s;
    out += "\n";
  }
  std::snprintf(line, sizeof line, "%-4s %-24s %-12s %12s %12s %8s  %s\n", "rank",
                "operator", "kind", "perturbed", "delta Mb/s", "share", "ledger delta");
  out += line;
  int rank = 1;
  for (const OperatorDelta& d : ranked) {
    std::string ledger;
    for (const auto& [k, v] : d.ledger_delta) {
      if (!ledger.empty()) ledger += ", ";
      char kv[96];
      std::snprintf(kv, sizeof kv, "%s%+.0f", (k + "=").c_str(), v);
      ledger += kv;
    }
    if (ledger.empty()) ledger = "(none — compute-bound)";
    std::snprintf(line, sizeof line, "%-4d %-24s %-12s %12.2f %+12.2f %7.1f%%  %s\n",
                  rank++, d.op.name.c_str(), perturbation_kind_name(d.op.kind),
                  d.perturbed_mbps, d.delta_mbps, d.delta_frac * 100.0,
                  ledger.c_str());
    out += line;
    if (!d.output_hash_matches) {
      out += "     ^ WARNING: output hash diverged — perturbation changed "
             "results, attribution invalid\n";
    }
    if (!d.slo_failures.empty()) {
      out += "     SLO failures under perturbation:";
      for (const auto& s : d.slo_failures) out += " " + s;
      out += "\n";
    }
  }
  return out;
}

}  // namespace ngp::perf
