// datapath.h — the real workloads behind the self-diagnosing harness.
//
// Two perf::Workload implementations over the repo's actual stack, both
// supporting the full single-operator perturbation registry the harness
// attributes against (perf/harness.h):
//
//   DatapathWorkload — ONE association end to end: the sender marshals
//   XDR int-array records through a compiled presentation plan straight
//   into wire staging (send_record), encrypts, fragments and paces over a
//   simulated gigabit link into a pooled receive path; the receiver
//   reassembles by reference, runs the fused decrypt+verify(+byteswap)
//   pass on the engine worker pool, and delivers chains the application
//   decodes and folds into an order-independent output hash. `offered`
//   is the burst size: ADUs handed to the sender before each drain.
//
//   SessiondPlaneWorkload — the server shape: a sharded session plane
//   (ngp::sessiond) terminating many flows behind one dispatcher, fed
//   pre-encoded record fragments. `offered` is the number of concurrent
//   sessions the fixed ADU budget round-robins across.
//
// Perturbations (each toggles exactly one operator; everything else,
// including the seeded application data, is bit-identical):
//   force_scalar_kernels   simd::set_active_tier(kScalar) for the run
//   unfuse_presentation    no plan fused into stage 2; the application
//                          pays the separate decode/transform pass
//   disable_rx_pool        no rx BufferPool: placement copies return
//   shrink_engine_workers  engine worker pool -> 0 (inline at submit)
//   synthetic_per_adu_copy an extra full copy pass at delivery
//
// Every run's RunMeasurement carries the §4 ledger (exact per seed) and
// the delivered-output hash (must be invariant under every perturbation —
// the workload's self-check that a perturbation degrades HOW, not WHAT).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "perf/harness.h"
#include "util/sim_clock.h"

namespace ngp::perf {

// The five registry names (shared by both workloads and the holds in
// bench_diagnose).
inline constexpr const char* kPerturbScalarKernels = "force_scalar_kernels";
inline constexpr const char* kPerturbUnfusePresentation = "unfuse_presentation";
inline constexpr const char* kPerturbDisableRxPool = "disable_rx_pool";
inline constexpr const char* kPerturbShrinkEngineWorkers = "shrink_engine_workers";
inline constexpr const char* kPerturbSyntheticCopy = "synthetic_per_adu_copy";

struct DatapathOptions {
  std::uint64_t seed = 1;
  std::size_t total_adus = 192;      ///< ADU budget per run
  std::size_t ints_per_adu = 4096;   ///< record payload: 16 KiB + prefix
  bool pooled = true;                ///< zero-copy rx datapath (DESIGN.md §12)
  unsigned engine_workers = 2;       ///< 0 = engine off (drops the shrink op)
  SimDuration engine_harvest_delay = 200 * kMicrosecond;
  /// Collect a FlightRecorder per-stage latency breakdown on the baseline
  /// run (NGP_OBS builds; empty JSON otherwise).
  bool collect_flight = false;

  static DatapathOptions smoke(std::uint64_t seed) {
    DatapathOptions o;
    o.seed = seed;
    o.total_adus = 64;
    o.ints_per_adu = 1024;
    return o;
  }
};

/// One full sender -> link -> receiver association (see file comment).
class DatapathWorkload final : public Workload {
 public:
  explicit DatapathWorkload(DatapathOptions opt) : opt_(opt) {}

  std::string name() const override { return "datapath"; }
  std::vector<PerturbationInfo> perturbations() const override;
  RunMeasurement run(std::size_t offered, const std::string& perturbation) override;

  /// Baseline FlightRecorder latency breakdown (FlightTable::to_json) from
  /// the most recent unperturbed run, when collect_flight was set.
  const std::string& last_flight_json() const noexcept { return flight_json_; }

  /// Flip flight collection AFTER diagnose(): recording during measured
  /// runs would bias the baseline against the unrecorded perturbed runs,
  /// so bench_diagnose harvests the breakdown from one extra run instead.
  void set_collect_flight(bool v) noexcept { opt_.collect_flight = v; }

  /// The exact §4 charge the synthetic copy stage adds per run (for the
  /// exact-bytes hold in bench_diagnose): one store pass over every
  /// delivered payload byte, in word-rounded bytes.
  std::uint64_t synthetic_copy_store_bytes() const noexcept;

 private:
  DatapathOptions opt_;
  std::string flight_json_;
};

struct SessiondPlaneOptions {
  std::uint64_t seed = 1;
  std::size_t total_adus = 256;     ///< ADU budget spread across sessions
  std::size_t ints_per_adu = 1024;
  unsigned engine_workers = 2;
  SimDuration engine_harvest_delay = 200 * kMicrosecond;

  static SessiondPlaneOptions smoke(std::uint64_t seed) {
    SessiondPlaneOptions o;
    o.seed = seed;
    o.total_adus = 96;
    o.ints_per_adu = 512;
    return o;
  }
};

/// The many-session plane under the same registry: pre-encoded record
/// fragments dispatched through sessiond into factory-created receivers.
class SessiondPlaneWorkload final : public Workload {
 public:
  explicit SessiondPlaneWorkload(SessiondPlaneOptions opt) : opt_(opt) {}

  std::string name() const override { return "sessiond_plane"; }
  std::vector<PerturbationInfo> perturbations() const override;
  RunMeasurement run(std::size_t offered, const std::string& perturbation) override;

 private:
  SessiondPlaneOptions opt_;
};

}  // namespace ngp::perf
