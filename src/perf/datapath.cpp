#include "perf/datapath.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "alf/receiver.h"
#include "alf/sender.h"
#include "alf/wire.h"
#include "buf/pool.h"
#include "checksum/checksum.h"
#include "engine/engine.h"
#include "netsim/link.h"
#include "netsim/net_path.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "presentation/plan.h"
#include "sessiond/sessiond.h"
#include "simd/dispatch.h"
#include "util/event_loop.h"
#include "util/rng.h"

#include <chrono>

namespace ngp::perf {

namespace {

/// Decodes which single operator a registry name perturbs.
struct Perturb {
  bool scalar = false;
  bool unfuse = false;
  bool no_pool = false;
  bool shrink = false;
  bool copy_stage = false;

  explicit Perturb(const std::string& name) {
    scalar = name == kPerturbScalarKernels;
    unfuse = name == kPerturbUnfusePresentation;
    no_pool = name == kPerturbDisableRxPool;
    shrink = name == kPerturbShrinkEngineWorkers;
    copy_stage = name == kPerturbSyntheticCopy;
  }
};

/// Restores the pre-run kernel tier no matter how the run exits.
struct TierGuard {
  simd::KernelTier saved = simd::active_tier();
  ~TierGuard() { simd::set_active_tier(saved); }
};

double wall_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The one record shape both workloads move: a single int32 array (the
/// Table-1 / E3 conversion-intensive payload).
RecordSchema int_array_schema() {
  return RecordSchema{"perf_ints", {FieldType::kInt32Array}};
}

/// Deterministic per-ADU payload: the data depends only on (seed, adu
/// ordinal), never on the perturbation, so the delivered-output hash is an
/// invariant every perturbed run must reproduce.
std::vector<std::int32_t> adu_ints(std::uint64_t seed, std::uint64_t ordinal,
                                   std::size_t n) {
  Rng rng(seed ^ (0x9E3779B97F4A7C15ull * (ordinal + 1)));
  std::vector<std::int32_t> v(n);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.next());
  return v;
}

/// FNV-1a over one delivered record; XOR-combined across ADUs so the hash
/// is independent of delivery order (the engine's out-of-order license).
std::uint64_t adu_hash(const AduName& name, const Record& rec) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  mix(name.a);
  for (const FieldValue& f : rec) {
    if (const auto* ints = std::get_if<std::vector<std::int32_t>>(&f)) {
      for (std::int32_t x : *ints) mix(static_cast<std::uint32_t>(x));
    }
  }
  return h;
}

/// Shared application-side consumption: optional synthetic copy stage,
/// then the presentation decode (host-order when the plan was fused, the
/// full transform when not), folded into the order-independent hash.
struct AppConsumer {
  const presentation::PresentationPlan* plan = nullptr;
  bool fused = false;
  bool copy_stage = false;
  obs::CostAccount cost;
  std::uint64_t hash = 0;
  std::uint64_t decode_failures = 0;

  void consume(const AduName& name, ByteBuffer&& payload) {
    cost.charge_operation(payload.size());
    if (copy_stage) {
      // The injected operator: one full extra copy pass per ADU.
      ByteBuffer scratch(payload.size());
      simd::kernels().copy(payload.span(), scratch.span());
      cost.charge_pass(payload.size(), /*stores=*/true);
      payload = std::move(scratch);
    }
    Result<Record> rec =
        fused ? presentation::plan_decode_host_order(*plan, payload.span(), &cost)
              : presentation::plan_decode(*plan, payload.span(), &cost);
    if (!rec.ok()) {
      ++decode_failures;
      return;
    }
    hash ^= adu_hash(name, *rec);
  }

  /// Chain delivery (pooled path): flatten once — the application's final
  /// placement from the gather list — then consume as flat bytes.
  void consume_chain(AduChain&& c) {
    ByteBuffer flat = c.payload.flatten();
    cost.charge_pass(flat.size(), /*stores=*/true);
    consume(c.name, std::move(flat));
  }
};

void put(std::map<std::string, double>& ledger, const char* k, double v) {
  ledger[k] = v;
}

}  // namespace

std::vector<PerturbationInfo> DatapathWorkload::perturbations() const {
  using Kind = PerturbationInfo::Kind;
  std::vector<PerturbationInfo> v;
  v.push_back({kPerturbScalarKernels,
               "pin simd dispatch to the scalar tier (ledger-invariant)",
               Kind::kCompute});
  v.push_back({kPerturbUnfusePresentation,
               "no plan fused into stage 2; app pays the decode transform",
               Kind::kMemory});
  if (opt_.pooled) {
    v.push_back({kPerturbDisableRxPool,
                 "flat receive path: placement copies return",
                 Kind::kMemory});
  }
  if (opt_.engine_workers > 0) {
    v.push_back({kPerturbShrinkEngineWorkers,
                 "engine worker pool -> 0 (inline at submit)",
                 Kind::kConcurrency});
  }
  v.push_back({kPerturbSyntheticCopy,
               "one extra full copy pass per delivered ADU",
               Kind::kMemory});
  return v;
}

std::uint64_t DatapathWorkload::synthetic_copy_store_bytes() const noexcept {
  const std::size_t wire = 4 + 4 * opt_.ints_per_adu;  // count prefix + elems
  return static_cast<std::uint64_t>(opt_.total_adus) *
         obs::CostAccount::words(wire) * 8;
}

RunMeasurement DatapathWorkload::run(std::size_t offered,
                                     const std::string& perturbation) {
  const Perturb p(perturbation);
  TierGuard tier_guard;
  if (p.scalar) simd::set_active_tier(simd::KernelTier::kScalar);

  EventLoop loop;
  LinkConfig lc;
  lc.bandwidth_bps = 1e9;
  lc.propagation_delay = kMillisecond;
  lc.queue_limit = 1 << 16;
  DuplexChannel channel(loop, lc);
  LinkPath data(channel.forward);
  LinkPath feedback_tx(channel.reverse);
  LinkPath feedback_rx(channel.reverse);

  const RecordSchema schema = int_array_schema();
  std::shared_ptr<const presentation::PresentationPlan> plan =
      presentation::cached_plan(schema, TransferSyntax::kXdr);

  alf::SessionConfig scfg;
  scfg.syntax = TransferSyntax::kXdr;
  scfg.checksum = ChecksumKind::kInternet;
  scfg.encrypt = true;
  // The harness owns the lifecycle (bounded run_until windows, not a
  // full drain): push the heartbeats out of frame and disable the stall
  // watchdog, which would otherwise fail the session the moment the sim
  // clock races past an idle gap.
  scfg.progress_interval = 3600 * kSecond;
  scfg.stall_timeout = 0;
  Rng key_rng(opt_.seed);
  key_rng.fill(MutableBytes{scfg.key.key.data(), scfg.key.key.size()});
  key_rng.fill(MutableBytes{scfg.key.nonce.data(), scfg.key.nonce.size()});

  alf::AlfSender sender(loop, data, feedback_rx, scfg);
  alf::AlfReceiver receiver(loop, data, feedback_tx, scfg);

  buf::BufferPool pool;
  const bool use_pool = opt_.pooled && !p.no_pool;
  if (use_pool) {
    channel.forward.set_rx_pool(&pool);
    receiver.set_rx_pool(&pool);
  }

  const unsigned workers = p.shrink ? 0 : opt_.engine_workers;
  std::unique_ptr<engine::Engine> eng;
  if (opt_.engine_workers > 0) {
    // The engine stays attached when the perturbation shrinks it: the one
    // operator that changes is the worker-pool size, not the code path.
    engine::EngineConfig ecfg;
    ecfg.workers = workers;
    eng = std::make_unique<engine::Engine>(ecfg);
    receiver.set_engine(eng.get(), opt_.engine_harvest_delay);
  }

  const bool fused = !p.unfuse;
  if (fused) receiver.set_presentation(plan);

  AppConsumer app;
  app.plan = plan.get();
  app.fused = fused;
  app.copy_stage = p.copy_stage;
  receiver.set_on_adu([&app](Adu&& a) { app.consume(a.name, std::move(a.payload)); });
  if (use_pool) {
    receiver.set_on_adu_chain([&app](AduChain&& c) { app.consume_chain(std::move(c)); });
  }

  // SLO watchdogs: edge-triggered failure detectors that must stay silent
  // on a healthy run — any firing is reported as a perf-report failure.
  obs::MetricsRegistry reg;
  receiver.register_metrics(reg, "rx");
  obs::TelemetryHub hub(&loop, reg);
  std::vector<std::string> slo_failures;
  const auto watch = [&](const char* metric, const char* label) {
    obs::SloWatch w;
    w.metric = metric;
    w.threshold = 1.0;
    hub.add_watch(w, [&slo_failures, label](const obs::SloEvent&) {
      slo_failures.push_back(label);
    });
  };
  watch("rx.adus_checksum_failed", "rx_checksum_failed");
  watch("rx.adus_abandoned", "rx_adus_abandoned");
  watch("rx.adus_shed", "rx_adus_shed");
  hub.start();

  // The flight recorder is for a separate UNMEASURED run (bench_diagnose
  // toggles collect_flight after diagnose()): recording during measured
  // baselines would bias them against the unrecorded perturbed runs.
  const bool with_flight = opt_.collect_flight && perturbation.empty();
  obs::FlightRecorder flight = obs::make_loop_flight_recorder(loop);
  if (with_flight) {
    flight.set_enabled(true);
    sender.set_flight(&flight);
    receiver.set_flight(&flight);
    if (eng) eng->set_flight(&flight);
  }

  // ---- the measured region: offered-load bursts through the full stack.
  // Bounded run_until windows, never loop.run(): the live session keeps
  // heartbeat timers armed, so the event queue never goes empty.
  const std::size_t burst = std::max<std::size_t>(1, offered);
  const auto t0 = std::chrono::steady_clock::now();
  Record record;
  record.emplace_back(std::vector<std::int32_t>{});
  for (std::size_t sent = 0; sent < opt_.total_adus;) {
    const std::size_t n = std::min(burst, opt_.total_adus - sent);
    for (std::size_t b = 0; b < n; ++b, ++sent) {
      record[0] = adu_ints(opt_.seed, sent, opt_.ints_per_adu);
      sender.send_record(generic_name(sent), *plan, record).value();
    }
    loop.run_until(loop.now() + 10 * kMillisecond);
  }
  sender.finish();
  // Drain: the engine pump's harvest timers ride the sim clock, so keep
  // stepping windows until everything due has landed (capped — a wedged
  // run exits with a short count and the holds flag it).
  for (int i = 0; i < 5000 && receiver.stats().adus_delivered < opt_.total_adus;
       ++i) {
    loop.run_until(loop.now() + 10 * kMillisecond);
  }
  if (eng) {
    eng->wait_all();
    loop.run_until(loop.now() + 10 * kMillisecond);
  }
  const double wall = wall_seconds(t0);
  hub.stop();

  if (with_flight) flight_json_ = flight.latency_table().to_json();

  const alf::ReceiverStats& rs = receiver.stats();
  RunMeasurement m;
  m.payload_bytes = static_cast<double>(rs.payload_bytes_delivered);
  m.cost_units = wall;
  m.output_hash = app.decode_failures == 0 ? app.hash : app.hash ^ app.decode_failures;
  m.slo_failures = std::move(slo_failures);

  const obs::CostAccount& sm = sender.manipulation_cost();
  const obs::CostAccount& rm = receiver.manipulation_cost();
  const obs::CostAccount& rr = receiver.reassembly_cost();
  put(m.ledger, "host_copied_bytes",
      static_cast<double>((sm.word_stores + rm.word_stores + rr.word_stores) * 8));
  put(m.ledger, "memory_passes",
      static_cast<double>(sm.memory_passes + rm.memory_passes + rr.memory_passes +
                          app.cost.memory_passes));
  put(m.ledger, "app_bytes_touched", static_cast<double>(app.cost.bytes_touched));
  put(m.ledger, "app_load_bytes", static_cast<double>(app.cost.word_loads * 8));
  put(m.ledger, "app_store_bytes", static_cast<double>(app.cost.word_stores * 8));
  put(m.ledger, "adus_delivered", static_cast<double>(rs.adus_delivered));
  put(m.ledger, "payload_bytes_delivered",
      static_cast<double>(rs.payload_bytes_delivered));
  put(m.ledger, "adus_presentation_fused",
      static_cast<double>(rs.adus_presentation_fused));
  put(m.ledger, "adus_engine_offloaded",
      static_cast<double>(rs.adus_engine_offloaded));
  put(m.ledger, "adus_chain_delivered",
      static_cast<double>(rs.adus_chain_delivered));
  put(m.ledger, "fragments_zero_copy", static_cast<double>(rs.fragments_zero_copy));
  put(m.ledger, "fragments_pool_copied",
      static_cast<double>(rs.fragments_pool_copied));
  return m;
}

// ---------------------------------------------------------------------------
// SessiondPlaneWorkload
// ---------------------------------------------------------------------------

std::vector<PerturbationInfo> SessiondPlaneWorkload::perturbations() const {
  using Kind = PerturbationInfo::Kind;
  std::vector<PerturbationInfo> v;
  v.push_back({kPerturbScalarKernels,
               "pin simd dispatch to the scalar tier (ledger-invariant)",
               Kind::kCompute});
  v.push_back({kPerturbUnfusePresentation,
               "no plan fused into stage 2; app pays the decode transform",
               Kind::kMemory});
  v.push_back({kPerturbDisableRxPool,
               "flat receive path per flow (no shared rx pool)",
               Kind::kMemory});
  if (opt_.engine_workers > 0) {
    v.push_back({kPerturbShrinkEngineWorkers,
                 "engine worker pool -> 0 (inline at submit)",
                 Kind::kConcurrency});
  }
  v.push_back({kPerturbSyntheticCopy,
               "one extra full copy pass per delivered ADU",
               Kind::kMemory});
  return v;
}

RunMeasurement SessiondPlaneWorkload::run(std::size_t offered,
                                          const std::string& perturbation) {
  const Perturb p(perturbation);
  TierGuard tier_guard;
  if (p.scalar) simd::set_active_tier(simd::KernelTier::kScalar);

  const std::size_t sessions = std::max<std::size_t>(1, offered);
  EventLoop loop;
  LinkConfig lc;
  lc.bandwidth_bps = 10e9;
  lc.propagation_delay = 10 * kMicrosecond;
  lc.queue_limit = 4096;
  DuplexChannel channel(loop, lc);
  LinkPath ingress(channel.forward);
  LinkPath feedback(channel.reverse);

  sessiond::Sessiond::Config dcfg;
  dcfg.table.shards = 64;
  dcfg.table.max_sessions = 2 * sessions + 16;
  sessiond::Sessiond daemon(loop, dcfg);
  const std::uint32_t peer = daemon.bind(ingress);

  const RecordSchema schema = int_array_schema();
  std::shared_ptr<const presentation::PresentationPlan> plan =
      presentation::cached_plan(schema, TransferSyntax::kXdr);
  const bool fused = !p.unfuse;

  buf::BufferPool pool;
  const unsigned workers = p.shrink ? 0 : opt_.engine_workers;
  std::unique_ptr<engine::Engine> eng;
  if (opt_.engine_workers > 0) {
    engine::EngineConfig ecfg;
    ecfg.workers = workers;
    eng = std::make_unique<engine::Engine>(ecfg);
  }

  // Receive-only flows: heartbeats pushed past the horizon (the plane, not
  // the timers, is the workload), watchdog off.
  alf::SessionConfig base;
  base.syntax = TransferSyntax::kXdr;
  base.checksum = ChecksumKind::kInternet;
  base.progress_interval = 3600 * kSecond;
  base.stall_timeout = 0;

  AppConsumer app;
  app.plan = plan.get();
  app.fused = fused;
  app.copy_stage = p.copy_stage;

  std::vector<const alf::AlfReceiver*> flows;
  sessiond::ReceiverFactoryOptions fopts;
  if (eng) {
    fopts.engine = eng.get();
    fopts.engine_harvest_delay = opt_.engine_harvest_delay;
  }
  if (!p.no_pool) fopts.rx_pool = &pool;
  if (fused) fopts.presentation = plan;
  fopts.configure = [&](const sessiond::FlowId&, alf::AlfReceiver& rx) {
    flows.push_back(&rx);
    rx.set_on_adu([&app](Adu&& a) { app.consume(a.name, std::move(a.payload)); });
    rx.set_on_adu_chain([&app](AduChain&& c) { app.consume_chain(std::move(c)); });
  };
  daemon.set_factory(sessiond::alf_receiver_factory(loop, feedback, base, fopts));

  obs::MetricsRegistry reg;
  daemon.register_metrics(reg, "sessiond");
  obs::TelemetryHub hub(&loop, reg);
  std::vector<std::string> slo_failures;
  const auto watch = [&](const char* metric, const char* label) {
    obs::SloWatch w;
    w.metric = metric;
    w.threshold = 1.0;
    hub.add_watch(w, [&slo_failures, label](const obs::SloEvent&) {
      slo_failures.push_back(label);
    });
  };
  watch("sessiond.dispatch.frames_unroutable", "dispatch_unroutable");
  watch("sessiond.dispatch.creates_rejected", "admission_rejected");

  // ---- pre-encode every frame (the "remote senders"): this generation
  // cost is identical across perturbations and excluded from the timing.
  constexpr std::size_t kFragLen = 1400;
  std::vector<ByteBuffer> frames;
  std::vector<std::uint32_t> next_adu(sessions + 1, 1);
  Record record;
  record.emplace_back(std::vector<std::int32_t>{});
  for (std::size_t i = 0; i < opt_.total_adus; ++i) {
    const std::uint16_t session = static_cast<std::uint16_t>(1 + i % sessions);
    record[0] = adu_ints(opt_.seed, i, opt_.ints_per_adu);
    ByteBuffer wire = presentation::plan_encode(*plan, record).value();
    alf::DataFragment f;
    f.session = session;
    f.adu_id = next_adu[session]++;
    f.name = generic_name(i);
    f.syntax = TransferSyntax::kXdr;
    f.checksum_kind = ChecksumKind::kInternet;
    f.adu_len = static_cast<std::uint32_t>(wire.size());
    f.adu_checksum = compute_checksum(ChecksumKind::kInternet, wire.span());
    for (std::size_t off = 0; off < wire.size(); off += kFragLen) {
      f.frag_off = static_cast<std::uint32_t>(off);
      f.payload = wire.subspan(off, std::min(kFragLen, wire.size() - off));
      frames.push_back(alf::encode_fragment(f));
    }
  }

  hub.start();
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t dispatched = 0;
  for (const ByteBuffer& frame : frames) {
    daemon.dispatcher().dispatch(peer, frame.span());
    if (++dispatched % 512 == 0) loop.run_until(loop.now() + 5 * kMillisecond);
  }
  // Drain: deliveries ride the engine harvest pump's sim timers.
  for (int i = 0; i < 200 && app.cost.operations + app.decode_failures <
                                opt_.total_adus;
       ++i) {
    loop.run_until(loop.now() + 10 * kMillisecond);
  }
  if (eng) {
    eng->wait_all();
    loop.run_until(loop.now() + 10 * kMillisecond);
  }
  const double wall = wall_seconds(t0);
  hub.stop();

  alf::ReceiverStats total{};
  obs::CostAccount manip, reassembly;
  for (const alf::AlfReceiver* rx : flows) {
    const alf::ReceiverStats& s = rx->stats();
    total.adus_delivered += s.adus_delivered;
    total.payload_bytes_delivered += s.payload_bytes_delivered;
    total.adus_presentation_fused += s.adus_presentation_fused;
    total.adus_engine_offloaded += s.adus_engine_offloaded;
    total.adus_chain_delivered += s.adus_chain_delivered;
    total.fragments_pool_copied += s.fragments_pool_copied;
    total.fragments_zero_copy += s.fragments_zero_copy;
    manip.merge(rx->manipulation_cost());
    reassembly.merge(rx->reassembly_cost());
  }

  RunMeasurement m;
  m.payload_bytes = static_cast<double>(total.payload_bytes_delivered);
  m.cost_units = wall;
  m.output_hash = app.decode_failures == 0 ? app.hash : app.hash ^ app.decode_failures;
  m.slo_failures = std::move(slo_failures);
  put(m.ledger, "host_copied_bytes",
      static_cast<double>((manip.word_stores + reassembly.word_stores) * 8));
  put(m.ledger, "memory_passes",
      static_cast<double>(manip.memory_passes + reassembly.memory_passes +
                          app.cost.memory_passes));
  put(m.ledger, "app_bytes_touched", static_cast<double>(app.cost.bytes_touched));
  put(m.ledger, "app_load_bytes", static_cast<double>(app.cost.word_loads * 8));
  put(m.ledger, "app_store_bytes", static_cast<double>(app.cost.word_stores * 8));
  put(m.ledger, "adus_delivered", static_cast<double>(total.adus_delivered));
  put(m.ledger, "payload_bytes_delivered",
      static_cast<double>(total.payload_bytes_delivered));
  put(m.ledger, "adus_presentation_fused",
      static_cast<double>(total.adus_presentation_fused));
  put(m.ledger, "adus_engine_offloaded",
      static_cast<double>(total.adus_engine_offloaded));
  put(m.ledger, "adus_chain_delivered",
      static_cast<double>(total.adus_chain_delivered));
  put(m.ledger, "fragments_pool_copied",
      static_cast<double>(total.fragments_pool_copied));
  put(m.ledger, "sessions", static_cast<double>(flows.size()));
  return m;
}

}  // namespace ngp::perf
