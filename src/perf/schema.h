// schema.h — the canonical bench-report schema, read side (ngp::perf).
//
// The write side is bench_util's BenchReport (one envelope every bench
// renders into); this module is its contract enforcement: validate a
// parsed report against the "ngp.bench/1" schema, and diff a fresh run
// against a checked-in baseline using the baseline's own `tracked`
// declarations. bench_trajectory is a thin CLI over these two calls, and
// perf_test pins the rules with synthetic documents.
//
// Schema (all keys required unless noted):
//   schema        "ngp.bench/1" exactly — anything else is drift
//   bench         non-empty [a-z0-9_]+ name; must match the baseline
//                 filename stem BENCH_<bench>.json when checked in
//   seed          non-negative integer-valued number
//   smoke         bool (a smoke run is NOT a valid trajectory point;
//                 validation flags it when `forbid_smoke` asks)
//   metrics       object: flat name -> finite number (the comparison
//                 surface; at least one entry)
//   tracked       array of {metric, higher_is_better, tolerance_frac}:
//                 every named metric must exist in `metrics`,
//                 tolerance_frac in [0, 1), metric names unique
//   holds         array of {name, ok}: names unique
//   all_holds_ok  bool, must equal the AND of holds[].ok
//   detail        object (free-form nested payload, not validated deeper)
#pragma once

#include <string>
#include <vector>

#include "perf/json.h"

namespace ngp::perf {

inline constexpr const char* kBenchSchemaId = "ngp.bench/1";

/// One regression-tracked metric, as declared by the baseline itself.
struct TrackedMetric {
  std::string metric;
  bool higher_is_better = true;
  double tolerance_frac = 0.0;
};

/// Validation result: empty `errors` = schema-valid.
struct ValidationResult {
  std::vector<std::string> errors;
  bool ok() const noexcept { return errors.empty(); }
};

struct ValidateOptions {
  /// When non-empty, the report's `bench` field must equal this (the
  /// filename stem for checked-in baselines).
  std::string expect_bench;
  /// Reject reports recorded from a --smoke run (reduced workloads are
  /// not comparable trajectory points).
  bool forbid_smoke = false;
};

/// Validates one parsed document against the ngp.bench/1 schema. Every
/// violation is reported (not just the first) so a drifted baseline can
/// be fixed in one pass.
ValidationResult validate_report(const json::Value& doc,
                                 const ValidateOptions& opt = {});

/// Extracts the tracked-metric declarations of a VALID report.
std::vector<TrackedMetric> tracked_metrics(const json::Value& doc);

/// One tracked metric's baseline-vs-current comparison.
struct MetricDelta {
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double change_frac = 0.0;  ///< (current - baseline) / |baseline|
  double tolerance_frac = 0.0;
  bool higher_is_better = true;
  bool regression = false;  ///< degraded beyond tolerance
  bool improvement = false; ///< improved beyond tolerance (trajectory news)
  bool missing = false;     ///< tracked in baseline, absent in current
};

/// Diff outcome for one (baseline, current) report pair.
struct TrajectoryDiff {
  std::string bench;
  std::vector<MetricDelta> deltas;   // baseline `tracked` order
  std::vector<std::string> errors;   // mismatched bench names, drift, ...
  bool current_holds_ok = true;      ///< current run's own self-checks
  bool regressed() const noexcept {
    for (const auto& d : deltas) {
      if (d.regression || d.missing) return true;
    }
    return false;
  }
  bool ok() const noexcept {
    return errors.empty() && current_holds_ok && !regressed();
  }
};

/// Compares `current` against `baseline` on the BASELINE's tracked
/// metrics with the baseline's tolerances. Both documents must already be
/// schema-valid; bench names must match. A current run with failing holds
/// is a failed trajectory point regardless of its numbers.
TrajectoryDiff compare_reports(const json::Value& baseline,
                               const json::Value& current);

}  // namespace ngp::perf
