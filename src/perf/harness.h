// harness.h — the self-diagnosing saturation harness (ngp::perf).
//
// The repo's optimisation story is quantitative: §4 of the paper argues
// about WHERE cycles go, and every PR since has shipped a ledger or bench
// to keep its own claim honest. This module automates the question "what
// is the bottleneck NOW?" with the saturation-throughput-delta
// methodology of the operator-cost profiling literature (PAPERS.md,
// arXiv 2508.09574):
//
//   1. drive a workload to SATURATION — step up offered load until more
//      offered load stops buying throughput (the knee);
//   2. re-run at the saturation point with exactly ONE operator perturbed
//      (force-scalar kernels, unfuse presentation, reintroduce copies,
//      shrink the worker pool, add a synthetic copy stage);
//   3. attribute the throughput DELTA to that operator, and rank.
//
// The harness measures two currencies per run and the report keeps both:
// wall-clock throughput (what the host actually did — noisy, machine
// bound) and the deterministic §4 ledger (memory passes / copied bytes —
// exact per seed). Their disagreement is itself a diagnosis: an operator
// whose perturbation moves wall time but not the ledger is compute-bound
// (a kernel tier), one that moves both is memory-bound (a copy stage).
//
// Workload is an interface so the attribution math is testable against a
// synthetic workload with a KNOWN injected bottleneck (perf_test) — the
// real datapath workloads live in perf/datapath.h.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ngp::perf {

/// One perturbable operator in the registry.
struct PerturbationInfo {
  /// Registry key, e.g. "force_scalar_kernels". [a-z0-9_]+.
  std::string name;
  std::string description;
  /// What currency the perturbation is expected to move: a compute
  /// perturbation leaves the §4 ledger untouched (tier-invariance is the
  /// cross-check), a memory one moves ledger and wall time together, a
  /// concurrency one moves wall time through parallelism alone.
  enum class Kind : std::uint8_t { kCompute, kMemory, kConcurrency };
  Kind kind = Kind::kCompute;
};

const char* perturbation_kind_name(PerturbationInfo::Kind k) noexcept;

/// One run's measurement. cost_units is wall-clock seconds for the real
/// workloads and a deterministic model cost for synthetic test workloads;
/// throughput is payload_bytes over cost_units either way.
struct RunMeasurement {
  double payload_bytes = 0.0;
  double cost_units = 0.0;
  /// Deterministic named counters (§4 ledgers, delivery stats). Exact per
  /// seed — the reproducible half of every attribution row.
  std::map<std::string, double> ledger;
  /// Output digest; must be perturbation-invariant for a valid workload
  /// (a perturbation degrades HOW work happens, never WHAT is computed).
  std::uint64_t output_hash = 0;
  /// TelemetryHub SLO watchdogs that fired during the run.
  std::vector<std::string> slo_failures;

  double mbps() const noexcept {
    return cost_units > 0.0 ? payload_bytes * 8.0 / 1e6 / cost_units : 0.0;
  }
};

/// A measurable workload with a registry of single-operator perturbations.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  /// The perturbation registry this workload supports. Order is the
  /// report's presentation order before ranking.
  virtual std::vector<PerturbationInfo> perturbations() const = 0;
  /// Runs once at `offered` load (workload-defined unit: in-flight ADUs,
  /// burst size, concurrent sessions). `perturbation` is "" for the
  /// baseline or one registry name; exactly one operator is perturbed.
  virtual RunMeasurement run(std::size_t offered,
                             const std::string& perturbation) = 0;
};

struct SaturationOptions {
  std::size_t offered_start = 4;    ///< first step's offered load
  std::size_t offered_max = 256;    ///< hard stop for the step search
  double step_factor = 2.0;         ///< geometric step
  double plateau_frac = 0.05;       ///< marginal gain below this = saturated
  int repeats = 1;                  ///< best-of repeats per step (wall noise)
};

struct SaturationPoint {
  std::size_t offered = 0;
  double mbps = 0.0;
};

struct SaturationResult {
  std::vector<SaturationPoint> steps;   ///< the whole measured curve
  std::size_t offered_at_saturation = 0;
  double sat_mbps = 0.0;
  RunMeasurement at_saturation;         ///< measurement at the chosen knee
};

/// Step-search on offered load: geometric steps until the marginal
/// throughput gain drops below plateau_frac (or offered_max). Returns the
/// best point seen — saturation throughput is a max, not a last-step.
SaturationResult find_saturation(Workload& w, const SaturationOptions& opt,
                                 const std::string& perturbation = "");

/// One operator's attribution row.
struct OperatorDelta {
  PerturbationInfo op;
  double baseline_mbps = 0.0;
  double perturbed_mbps = 0.0;
  double delta_mbps = 0.0;  ///< baseline - perturbed (positive = slowdown)
  double delta_frac = 0.0;  ///< delta_mbps / baseline_mbps
  /// Perturbed-minus-baseline ledger difference, exact per seed. Keys are
  /// the union of both runs' ledgers (absent = 0).
  std::map<std::string, double> ledger_delta;
  std::vector<std::string> slo_failures;  ///< watchdogs fired when perturbed
  bool output_hash_matches = true;        ///< invariant output self-check
};

/// The harness's verdict: saturation curve + ranked bottleneck table.
struct PerfReport {
  std::string workload;
  SaturationResult baseline;
  /// Ranked most-costly-first: delta_frac descending, ties by name (the
  /// wall ranking; each row carries its deterministic ledger cross-check).
  std::vector<OperatorDelta> ranked;
  std::vector<std::string> baseline_slo_failures;
  /// Baseline FlightRecorder per-stage latency breakdown JSON ("" when
  /// the workload collects none / observability is compiled out).
  std::string flight_breakdown_json;

  /// The operator-level attribution table, aligned for humans.
  std::string render_table() const;
};

/// Runs the full methodology: saturate the baseline, then re-run each
/// registry perturbation AT the baseline's saturation offered load and
/// attribute the deltas. Deterministic given a deterministic workload.
PerfReport diagnose(Workload& w, const SaturationOptions& opt);

}  // namespace ngp::perf
