file(REMOVE_RECURSE
  "CMakeFiles/ngp_util.dir/bytes.cpp.o"
  "CMakeFiles/ngp_util.dir/bytes.cpp.o.d"
  "CMakeFiles/ngp_util.dir/event_loop.cpp.o"
  "CMakeFiles/ngp_util.dir/event_loop.cpp.o.d"
  "CMakeFiles/ngp_util.dir/logging.cpp.o"
  "CMakeFiles/ngp_util.dir/logging.cpp.o.d"
  "CMakeFiles/ngp_util.dir/rng.cpp.o"
  "CMakeFiles/ngp_util.dir/rng.cpp.o.d"
  "CMakeFiles/ngp_util.dir/stats.cpp.o"
  "CMakeFiles/ngp_util.dir/stats.cpp.o.d"
  "libngp_util.a"
  "libngp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
