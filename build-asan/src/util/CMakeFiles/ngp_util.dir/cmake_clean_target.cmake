file(REMOVE_RECURSE
  "libngp_util.a"
)
