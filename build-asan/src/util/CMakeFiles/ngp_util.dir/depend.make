# Empty dependencies file for ngp_util.
# This may be replaced when dependencies are built.
