file(REMOVE_RECURSE
  "libngp_crypto.a"
)
