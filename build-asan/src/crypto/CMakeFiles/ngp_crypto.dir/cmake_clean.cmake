file(REMOVE_RECURSE
  "CMakeFiles/ngp_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/ngp_crypto.dir/chacha20.cpp.o.d"
  "libngp_crypto.a"
  "libngp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngp_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
