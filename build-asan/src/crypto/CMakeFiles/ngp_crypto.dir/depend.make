# Empty dependencies file for ngp_crypto.
# This may be replaced when dependencies are built.
