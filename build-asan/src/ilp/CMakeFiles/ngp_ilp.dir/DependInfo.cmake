
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ilp/kernels.cpp" "src/ilp/CMakeFiles/ngp_ilp.dir/kernels.cpp.o" "gcc" "src/ilp/CMakeFiles/ngp_ilp.dir/kernels.cpp.o.d"
  "/root/repo/src/ilp/runtime.cpp" "src/ilp/CMakeFiles/ngp_ilp.dir/runtime.cpp.o" "gcc" "src/ilp/CMakeFiles/ngp_ilp.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/ngp_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/checksum/CMakeFiles/ngp_checksum.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/crypto/CMakeFiles/ngp_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
