file(REMOVE_RECURSE
  "CMakeFiles/ngp_ilp.dir/kernels.cpp.o"
  "CMakeFiles/ngp_ilp.dir/kernels.cpp.o.d"
  "CMakeFiles/ngp_ilp.dir/runtime.cpp.o"
  "CMakeFiles/ngp_ilp.dir/runtime.cpp.o.d"
  "libngp_ilp.a"
  "libngp_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngp_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
