# Empty dependencies file for ngp_ilp.
# This may be replaced when dependencies are built.
