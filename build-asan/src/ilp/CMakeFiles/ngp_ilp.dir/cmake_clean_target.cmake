file(REMOVE_RECURSE
  "libngp_ilp.a"
)
