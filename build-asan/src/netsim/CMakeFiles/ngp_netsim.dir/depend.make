# Empty dependencies file for ngp_netsim.
# This may be replaced when dependencies are built.
