
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/byte_stream_link.cpp" "src/netsim/CMakeFiles/ngp_netsim.dir/byte_stream_link.cpp.o" "gcc" "src/netsim/CMakeFiles/ngp_netsim.dir/byte_stream_link.cpp.o.d"
  "/root/repo/src/netsim/cell_link.cpp" "src/netsim/CMakeFiles/ngp_netsim.dir/cell_link.cpp.o" "gcc" "src/netsim/CMakeFiles/ngp_netsim.dir/cell_link.cpp.o.d"
  "/root/repo/src/netsim/fault.cpp" "src/netsim/CMakeFiles/ngp_netsim.dir/fault.cpp.o" "gcc" "src/netsim/CMakeFiles/ngp_netsim.dir/fault.cpp.o.d"
  "/root/repo/src/netsim/framing.cpp" "src/netsim/CMakeFiles/ngp_netsim.dir/framing.cpp.o" "gcc" "src/netsim/CMakeFiles/ngp_netsim.dir/framing.cpp.o.d"
  "/root/repo/src/netsim/link.cpp" "src/netsim/CMakeFiles/ngp_netsim.dir/link.cpp.o" "gcc" "src/netsim/CMakeFiles/ngp_netsim.dir/link.cpp.o.d"
  "/root/repo/src/netsim/relay.cpp" "src/netsim/CMakeFiles/ngp_netsim.dir/relay.cpp.o" "gcc" "src/netsim/CMakeFiles/ngp_netsim.dir/relay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/ngp_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/checksum/CMakeFiles/ngp_checksum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
