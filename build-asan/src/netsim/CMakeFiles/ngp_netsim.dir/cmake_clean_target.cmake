file(REMOVE_RECURSE
  "libngp_netsim.a"
)
