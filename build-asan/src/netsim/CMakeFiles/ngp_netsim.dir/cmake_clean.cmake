file(REMOVE_RECURSE
  "CMakeFiles/ngp_netsim.dir/byte_stream_link.cpp.o"
  "CMakeFiles/ngp_netsim.dir/byte_stream_link.cpp.o.d"
  "CMakeFiles/ngp_netsim.dir/cell_link.cpp.o"
  "CMakeFiles/ngp_netsim.dir/cell_link.cpp.o.d"
  "CMakeFiles/ngp_netsim.dir/fault.cpp.o"
  "CMakeFiles/ngp_netsim.dir/fault.cpp.o.d"
  "CMakeFiles/ngp_netsim.dir/framing.cpp.o"
  "CMakeFiles/ngp_netsim.dir/framing.cpp.o.d"
  "CMakeFiles/ngp_netsim.dir/link.cpp.o"
  "CMakeFiles/ngp_netsim.dir/link.cpp.o.d"
  "CMakeFiles/ngp_netsim.dir/relay.cpp.o"
  "CMakeFiles/ngp_netsim.dir/relay.cpp.o.d"
  "libngp_netsim.a"
  "libngp_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngp_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
