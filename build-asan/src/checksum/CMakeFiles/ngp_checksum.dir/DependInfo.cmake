
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checksum/adler.cpp" "src/checksum/CMakeFiles/ngp_checksum.dir/adler.cpp.o" "gcc" "src/checksum/CMakeFiles/ngp_checksum.dir/adler.cpp.o.d"
  "/root/repo/src/checksum/checksum.cpp" "src/checksum/CMakeFiles/ngp_checksum.dir/checksum.cpp.o" "gcc" "src/checksum/CMakeFiles/ngp_checksum.dir/checksum.cpp.o.d"
  "/root/repo/src/checksum/crc32.cpp" "src/checksum/CMakeFiles/ngp_checksum.dir/crc32.cpp.o" "gcc" "src/checksum/CMakeFiles/ngp_checksum.dir/crc32.cpp.o.d"
  "/root/repo/src/checksum/fletcher.cpp" "src/checksum/CMakeFiles/ngp_checksum.dir/fletcher.cpp.o" "gcc" "src/checksum/CMakeFiles/ngp_checksum.dir/fletcher.cpp.o.d"
  "/root/repo/src/checksum/internet.cpp" "src/checksum/CMakeFiles/ngp_checksum.dir/internet.cpp.o" "gcc" "src/checksum/CMakeFiles/ngp_checksum.dir/internet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/ngp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
