file(REMOVE_RECURSE
  "libngp_checksum.a"
)
