file(REMOVE_RECURSE
  "CMakeFiles/ngp_checksum.dir/adler.cpp.o"
  "CMakeFiles/ngp_checksum.dir/adler.cpp.o.d"
  "CMakeFiles/ngp_checksum.dir/checksum.cpp.o"
  "CMakeFiles/ngp_checksum.dir/checksum.cpp.o.d"
  "CMakeFiles/ngp_checksum.dir/crc32.cpp.o"
  "CMakeFiles/ngp_checksum.dir/crc32.cpp.o.d"
  "CMakeFiles/ngp_checksum.dir/fletcher.cpp.o"
  "CMakeFiles/ngp_checksum.dir/fletcher.cpp.o.d"
  "CMakeFiles/ngp_checksum.dir/internet.cpp.o"
  "CMakeFiles/ngp_checksum.dir/internet.cpp.o.d"
  "libngp_checksum.a"
  "libngp_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngp_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
