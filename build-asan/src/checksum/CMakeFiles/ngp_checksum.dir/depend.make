# Empty dependencies file for ngp_checksum.
# This may be replaced when dependencies are built.
