# CMake generated Testfile for 
# Source directory: /root/repo/src/checksum
# Build directory: /root/repo/build-asan/src/checksum
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
