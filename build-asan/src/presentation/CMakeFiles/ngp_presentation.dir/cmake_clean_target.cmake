file(REMOVE_RECURSE
  "libngp_presentation.a"
)
