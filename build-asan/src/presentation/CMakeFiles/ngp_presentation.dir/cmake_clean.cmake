file(REMOVE_RECURSE
  "CMakeFiles/ngp_presentation.dir/ber.cpp.o"
  "CMakeFiles/ngp_presentation.dir/ber.cpp.o.d"
  "CMakeFiles/ngp_presentation.dir/codec.cpp.o"
  "CMakeFiles/ngp_presentation.dir/codec.cpp.o.d"
  "CMakeFiles/ngp_presentation.dir/lwts.cpp.o"
  "CMakeFiles/ngp_presentation.dir/lwts.cpp.o.d"
  "CMakeFiles/ngp_presentation.dir/record.cpp.o"
  "CMakeFiles/ngp_presentation.dir/record.cpp.o.d"
  "CMakeFiles/ngp_presentation.dir/text.cpp.o"
  "CMakeFiles/ngp_presentation.dir/text.cpp.o.d"
  "CMakeFiles/ngp_presentation.dir/xdr.cpp.o"
  "CMakeFiles/ngp_presentation.dir/xdr.cpp.o.d"
  "libngp_presentation.a"
  "libngp_presentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngp_presentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
