
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/presentation/ber.cpp" "src/presentation/CMakeFiles/ngp_presentation.dir/ber.cpp.o" "gcc" "src/presentation/CMakeFiles/ngp_presentation.dir/ber.cpp.o.d"
  "/root/repo/src/presentation/codec.cpp" "src/presentation/CMakeFiles/ngp_presentation.dir/codec.cpp.o" "gcc" "src/presentation/CMakeFiles/ngp_presentation.dir/codec.cpp.o.d"
  "/root/repo/src/presentation/lwts.cpp" "src/presentation/CMakeFiles/ngp_presentation.dir/lwts.cpp.o" "gcc" "src/presentation/CMakeFiles/ngp_presentation.dir/lwts.cpp.o.d"
  "/root/repo/src/presentation/record.cpp" "src/presentation/CMakeFiles/ngp_presentation.dir/record.cpp.o" "gcc" "src/presentation/CMakeFiles/ngp_presentation.dir/record.cpp.o.d"
  "/root/repo/src/presentation/text.cpp" "src/presentation/CMakeFiles/ngp_presentation.dir/text.cpp.o" "gcc" "src/presentation/CMakeFiles/ngp_presentation.dir/text.cpp.o.d"
  "/root/repo/src/presentation/xdr.cpp" "src/presentation/CMakeFiles/ngp_presentation.dir/xdr.cpp.o" "gcc" "src/presentation/CMakeFiles/ngp_presentation.dir/xdr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/ngp_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/checksum/CMakeFiles/ngp_checksum.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ilp/CMakeFiles/ngp_ilp.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/crypto/CMakeFiles/ngp_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
