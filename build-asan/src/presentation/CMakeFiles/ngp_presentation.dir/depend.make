# Empty dependencies file for ngp_presentation.
# This may be replaced when dependencies are built.
