# Empty dependencies file for ngp_transport.
# This may be replaced when dependencies are built.
