file(REMOVE_RECURSE
  "CMakeFiles/ngp_transport.dir/segment.cpp.o"
  "CMakeFiles/ngp_transport.dir/segment.cpp.o.d"
  "CMakeFiles/ngp_transport.dir/stream_receiver.cpp.o"
  "CMakeFiles/ngp_transport.dir/stream_receiver.cpp.o.d"
  "CMakeFiles/ngp_transport.dir/stream_sender.cpp.o"
  "CMakeFiles/ngp_transport.dir/stream_sender.cpp.o.d"
  "libngp_transport.a"
  "libngp_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngp_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
