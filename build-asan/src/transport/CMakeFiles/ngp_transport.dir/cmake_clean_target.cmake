file(REMOVE_RECURSE
  "libngp_transport.a"
)
