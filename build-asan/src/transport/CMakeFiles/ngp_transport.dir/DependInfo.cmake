
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/segment.cpp" "src/transport/CMakeFiles/ngp_transport.dir/segment.cpp.o" "gcc" "src/transport/CMakeFiles/ngp_transport.dir/segment.cpp.o.d"
  "/root/repo/src/transport/stream_receiver.cpp" "src/transport/CMakeFiles/ngp_transport.dir/stream_receiver.cpp.o" "gcc" "src/transport/CMakeFiles/ngp_transport.dir/stream_receiver.cpp.o.d"
  "/root/repo/src/transport/stream_sender.cpp" "src/transport/CMakeFiles/ngp_transport.dir/stream_sender.cpp.o" "gcc" "src/transport/CMakeFiles/ngp_transport.dir/stream_sender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/ngp_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/checksum/CMakeFiles/ngp_checksum.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/netsim/CMakeFiles/ngp_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
