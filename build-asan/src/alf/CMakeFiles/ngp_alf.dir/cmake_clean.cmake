file(REMOVE_RECURSE
  "CMakeFiles/ngp_alf.dir/adu.cpp.o"
  "CMakeFiles/ngp_alf.dir/adu.cpp.o.d"
  "CMakeFiles/ngp_alf.dir/adversary.cpp.o"
  "CMakeFiles/ngp_alf.dir/adversary.cpp.o.d"
  "CMakeFiles/ngp_alf.dir/association.cpp.o"
  "CMakeFiles/ngp_alf.dir/association.cpp.o.d"
  "CMakeFiles/ngp_alf.dir/fec.cpp.o"
  "CMakeFiles/ngp_alf.dir/fec.cpp.o.d"
  "CMakeFiles/ngp_alf.dir/file_sink.cpp.o"
  "CMakeFiles/ngp_alf.dir/file_sink.cpp.o.d"
  "CMakeFiles/ngp_alf.dir/negotiate.cpp.o"
  "CMakeFiles/ngp_alf.dir/negotiate.cpp.o.d"
  "CMakeFiles/ngp_alf.dir/receiver.cpp.o"
  "CMakeFiles/ngp_alf.dir/receiver.cpp.o.d"
  "CMakeFiles/ngp_alf.dir/router.cpp.o"
  "CMakeFiles/ngp_alf.dir/router.cpp.o.d"
  "CMakeFiles/ngp_alf.dir/sender.cpp.o"
  "CMakeFiles/ngp_alf.dir/sender.cpp.o.d"
  "CMakeFiles/ngp_alf.dir/striper.cpp.o"
  "CMakeFiles/ngp_alf.dir/striper.cpp.o.d"
  "CMakeFiles/ngp_alf.dir/video_sink.cpp.o"
  "CMakeFiles/ngp_alf.dir/video_sink.cpp.o.d"
  "CMakeFiles/ngp_alf.dir/wire.cpp.o"
  "CMakeFiles/ngp_alf.dir/wire.cpp.o.d"
  "libngp_alf.a"
  "libngp_alf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ngp_alf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
