
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alf/adu.cpp" "src/alf/CMakeFiles/ngp_alf.dir/adu.cpp.o" "gcc" "src/alf/CMakeFiles/ngp_alf.dir/adu.cpp.o.d"
  "/root/repo/src/alf/adversary.cpp" "src/alf/CMakeFiles/ngp_alf.dir/adversary.cpp.o" "gcc" "src/alf/CMakeFiles/ngp_alf.dir/adversary.cpp.o.d"
  "/root/repo/src/alf/association.cpp" "src/alf/CMakeFiles/ngp_alf.dir/association.cpp.o" "gcc" "src/alf/CMakeFiles/ngp_alf.dir/association.cpp.o.d"
  "/root/repo/src/alf/fec.cpp" "src/alf/CMakeFiles/ngp_alf.dir/fec.cpp.o" "gcc" "src/alf/CMakeFiles/ngp_alf.dir/fec.cpp.o.d"
  "/root/repo/src/alf/file_sink.cpp" "src/alf/CMakeFiles/ngp_alf.dir/file_sink.cpp.o" "gcc" "src/alf/CMakeFiles/ngp_alf.dir/file_sink.cpp.o.d"
  "/root/repo/src/alf/negotiate.cpp" "src/alf/CMakeFiles/ngp_alf.dir/negotiate.cpp.o" "gcc" "src/alf/CMakeFiles/ngp_alf.dir/negotiate.cpp.o.d"
  "/root/repo/src/alf/receiver.cpp" "src/alf/CMakeFiles/ngp_alf.dir/receiver.cpp.o" "gcc" "src/alf/CMakeFiles/ngp_alf.dir/receiver.cpp.o.d"
  "/root/repo/src/alf/router.cpp" "src/alf/CMakeFiles/ngp_alf.dir/router.cpp.o" "gcc" "src/alf/CMakeFiles/ngp_alf.dir/router.cpp.o.d"
  "/root/repo/src/alf/sender.cpp" "src/alf/CMakeFiles/ngp_alf.dir/sender.cpp.o" "gcc" "src/alf/CMakeFiles/ngp_alf.dir/sender.cpp.o.d"
  "/root/repo/src/alf/striper.cpp" "src/alf/CMakeFiles/ngp_alf.dir/striper.cpp.o" "gcc" "src/alf/CMakeFiles/ngp_alf.dir/striper.cpp.o.d"
  "/root/repo/src/alf/video_sink.cpp" "src/alf/CMakeFiles/ngp_alf.dir/video_sink.cpp.o" "gcc" "src/alf/CMakeFiles/ngp_alf.dir/video_sink.cpp.o.d"
  "/root/repo/src/alf/wire.cpp" "src/alf/CMakeFiles/ngp_alf.dir/wire.cpp.o" "gcc" "src/alf/CMakeFiles/ngp_alf.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/util/CMakeFiles/ngp_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/checksum/CMakeFiles/ngp_checksum.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/crypto/CMakeFiles/ngp_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ilp/CMakeFiles/ngp_ilp.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/presentation/CMakeFiles/ngp_presentation.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/netsim/CMakeFiles/ngp_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
