# Empty dependencies file for ngp_alf.
# This may be replaced when dependencies are built.
