file(REMOVE_RECURSE
  "libngp_alf.a"
)
