# Empty dependencies file for alf_sink_test.
# This may be replaced when dependencies are built.
