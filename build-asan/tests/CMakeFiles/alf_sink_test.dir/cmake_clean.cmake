file(REMOVE_RECURSE
  "CMakeFiles/alf_sink_test.dir/alf_sink_test.cpp.o"
  "CMakeFiles/alf_sink_test.dir/alf_sink_test.cpp.o.d"
  "alf_sink_test"
  "alf_sink_test.pdb"
  "alf_sink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_sink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
