# Empty dependencies file for striper_test.
# This may be replaced when dependencies are built.
