file(REMOVE_RECURSE
  "CMakeFiles/striper_test.dir/striper_test.cpp.o"
  "CMakeFiles/striper_test.dir/striper_test.cpp.o.d"
  "striper_test"
  "striper_test.pdb"
  "striper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/striper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
