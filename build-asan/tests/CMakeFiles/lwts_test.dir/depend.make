# Empty dependencies file for lwts_test.
# This may be replaced when dependencies are built.
