file(REMOVE_RECURSE
  "CMakeFiles/lwts_test.dir/lwts_test.cpp.o"
  "CMakeFiles/lwts_test.dir/lwts_test.cpp.o.d"
  "lwts_test"
  "lwts_test.pdb"
  "lwts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
