file(REMOVE_RECURSE
  "CMakeFiles/association_test.dir/association_test.cpp.o"
  "CMakeFiles/association_test.dir/association_test.cpp.o.d"
  "association_test"
  "association_test.pdb"
  "association_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/association_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
