# Empty dependencies file for association_test.
# This may be replaced when dependencies are built.
