# Empty dependencies file for alf_test.
# This may be replaced when dependencies are built.
