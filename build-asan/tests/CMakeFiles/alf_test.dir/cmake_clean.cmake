file(REMOVE_RECURSE
  "CMakeFiles/alf_test.dir/alf_test.cpp.o"
  "CMakeFiles/alf_test.dir/alf_test.cpp.o.d"
  "alf_test"
  "alf_test.pdb"
  "alf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
