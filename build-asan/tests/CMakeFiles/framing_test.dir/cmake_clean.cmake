file(REMOVE_RECURSE
  "CMakeFiles/framing_test.dir/framing_test.cpp.o"
  "CMakeFiles/framing_test.dir/framing_test.cpp.o.d"
  "framing_test"
  "framing_test.pdb"
  "framing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
