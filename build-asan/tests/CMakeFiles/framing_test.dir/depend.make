# Empty dependencies file for framing_test.
# This may be replaced when dependencies are built.
