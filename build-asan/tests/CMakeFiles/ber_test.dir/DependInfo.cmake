
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ber_test.cpp" "tests/CMakeFiles/ber_test.dir/ber_test.cpp.o" "gcc" "tests/CMakeFiles/ber_test.dir/ber_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/alf/CMakeFiles/ngp_alf.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/transport/CMakeFiles/ngp_transport.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/netsim/CMakeFiles/ngp_netsim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/presentation/CMakeFiles/ngp_presentation.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/ilp/CMakeFiles/ngp_ilp.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/crypto/CMakeFiles/ngp_crypto.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/checksum/CMakeFiles/ngp_checksum.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/ngp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
