# Empty dependencies file for alf_wire_test.
# This may be replaced when dependencies are built.
