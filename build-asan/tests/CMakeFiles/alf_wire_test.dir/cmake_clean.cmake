file(REMOVE_RECURSE
  "CMakeFiles/alf_wire_test.dir/alf_wire_test.cpp.o"
  "CMakeFiles/alf_wire_test.dir/alf_wire_test.cpp.o.d"
  "alf_wire_test"
  "alf_wire_test.pdb"
  "alf_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alf_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
