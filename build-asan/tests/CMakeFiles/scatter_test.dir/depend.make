# Empty dependencies file for scatter_test.
# This may be replaced when dependencies are built.
