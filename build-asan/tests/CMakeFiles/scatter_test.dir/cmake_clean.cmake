file(REMOVE_RECURSE
  "CMakeFiles/scatter_test.dir/scatter_test.cpp.o"
  "CMakeFiles/scatter_test.dir/scatter_test.cpp.o.d"
  "scatter_test"
  "scatter_test.pdb"
  "scatter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scatter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
