# Empty dependencies file for cell_link_test.
# This may be replaced when dependencies are built.
