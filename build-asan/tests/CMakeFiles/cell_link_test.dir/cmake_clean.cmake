file(REMOVE_RECURSE
  "CMakeFiles/cell_link_test.dir/cell_link_test.cpp.o"
  "CMakeFiles/cell_link_test.dir/cell_link_test.cpp.o.d"
  "cell_link_test"
  "cell_link_test.pdb"
  "cell_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
