file(REMOVE_RECURSE
  "CMakeFiles/fec_test.dir/fec_test.cpp.o"
  "CMakeFiles/fec_test.dir/fec_test.cpp.o.d"
  "fec_test"
  "fec_test.pdb"
  "fec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
