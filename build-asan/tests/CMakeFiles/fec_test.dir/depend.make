# Empty dependencies file for fec_test.
# This may be replaced when dependencies are built.
