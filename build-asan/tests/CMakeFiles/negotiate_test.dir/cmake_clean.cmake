file(REMOVE_RECURSE
  "CMakeFiles/negotiate_test.dir/negotiate_test.cpp.o"
  "CMakeFiles/negotiate_test.dir/negotiate_test.cpp.o.d"
  "negotiate_test"
  "negotiate_test.pdb"
  "negotiate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/negotiate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
