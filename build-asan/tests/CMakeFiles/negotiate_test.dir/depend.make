# Empty dependencies file for negotiate_test.
# This may be replaced when dependencies are built.
