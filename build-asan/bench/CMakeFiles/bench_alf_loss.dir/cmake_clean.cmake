file(REMOVE_RECURSE
  "CMakeFiles/bench_alf_loss.dir/bench_alf_loss.cpp.o"
  "CMakeFiles/bench_alf_loss.dir/bench_alf_loss.cpp.o.d"
  "bench_alf_loss"
  "bench_alf_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alf_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
