# Empty dependencies file for bench_alf_loss.
# This may be replaced when dependencies are built.
