# Empty dependencies file for bench_ilp_fusion.
# This may be replaced when dependencies are built.
