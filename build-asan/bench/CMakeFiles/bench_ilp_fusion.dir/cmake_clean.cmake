file(REMOVE_RECURSE
  "CMakeFiles/bench_ilp_fusion.dir/bench_ilp_fusion.cpp.o"
  "CMakeFiles/bench_ilp_fusion.dir/bench_ilp_fusion.cpp.o.d"
  "bench_ilp_fusion"
  "bench_ilp_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ilp_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
