file(REMOVE_RECURSE
  "CMakeFiles/bench_presentation.dir/bench_presentation.cpp.o"
  "CMakeFiles/bench_presentation.dir/bench_presentation.cpp.o.d"
  "bench_presentation"
  "bench_presentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_presentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
