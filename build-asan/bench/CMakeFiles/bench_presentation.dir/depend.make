# Empty dependencies file for bench_presentation.
# This may be replaced when dependencies are built.
