file(REMOVE_RECURSE
  "CMakeFiles/bench_cells.dir/bench_cells.cpp.o"
  "CMakeFiles/bench_cells.dir/bench_cells.cpp.o.d"
  "bench_cells"
  "bench_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
