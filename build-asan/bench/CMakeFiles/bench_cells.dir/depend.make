# Empty dependencies file for bench_cells.
# This may be replaced when dependencies are built.
