# Empty dependencies file for rpc.
# This may be replaced when dependencies are built.
