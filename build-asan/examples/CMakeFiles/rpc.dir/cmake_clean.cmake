file(REMOVE_RECURSE
  "CMakeFiles/rpc.dir/rpc.cpp.o"
  "CMakeFiles/rpc.dir/rpc.cpp.o.d"
  "rpc"
  "rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
