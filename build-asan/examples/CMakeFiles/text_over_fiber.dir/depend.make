# Empty dependencies file for text_over_fiber.
# This may be replaced when dependencies are built.
