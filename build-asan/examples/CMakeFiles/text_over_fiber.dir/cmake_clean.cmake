file(REMOVE_RECURSE
  "CMakeFiles/text_over_fiber.dir/text_over_fiber.cpp.o"
  "CMakeFiles/text_over_fiber.dir/text_over_fiber.cpp.o.d"
  "text_over_fiber"
  "text_over_fiber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_over_fiber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
