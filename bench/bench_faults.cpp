// bench_faults — E8: goodput under hostile substrates (fault injection).
//
// The robustness companion to E5: instead of clean Bernoulli loss, the data
// direction runs through a FaultyPath injecting payload bit-flips, header
// mutations, truncations and link outage flaps — the §3 failure modes a
// general-purpose protocol must face. Both transports see the identical
// fault sequence (same plan seed).
//
// Reported per fault level, for the TCP-like in-order stream and for ALF:
// completion time, effective goodput, and how the run ended — completed,
// ADUs abandoned (ALF's bounded-recovery escape hatch), or watchdog/DNF.
// Shape to reproduce: ALF degrades gracefully (it can abandon unlucky ADUs
// and keep the rest of the pipeline busy), while the in-order stream must
// win every retransmission race before anything later is usable.
#include <cstdio>
#include <functional>
#include <string>

#include "alf/receiver.h"
#include "alf/sender.h"
#include "bench_util.h"
#include "netsim/fault.h"
#include "netsim/net_path.h"
#include "transport/stream_receiver.h"
#include "transport/stream_sender.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace ngp;

constexpr std::size_t kFileBytes = 2 << 20;   // 2 MB transfer
constexpr double kLinkBps = 50e6;             // 50 Mb/s link
constexpr double kAppBps = 30e6;              // app converts at 30 Mb/s
constexpr std::size_t kAduSize = 8000;        // ~2 packets per ADU
constexpr SimDuration kRunCap = 120 * kSecond;

struct AppModel {
  SimTime busy_until = 0;
  std::uint64_t bytes = 0;

  void consume(SimTime now, std::size_t n) {
    if (now > busy_until) busy_until = now;
    busy_until += transmission_time(n, kAppBps);
    bytes += n;
  }
};

struct FaultResult {
  double completion_s = 0;
  double goodput_mbps = 0;
  bool finished = false;      ///< all bytes / session complete before the cap
  std::uint64_t abandoned = 0;  ///< ALF only: ADUs given up after max_nacks
  bool watchdog = false;        ///< a stall watchdog ended the session
};

LinkConfig data_link(std::uint64_t seed) {
  LinkConfig cfg;
  cfg.bandwidth_bps = kLinkBps;
  cfg.propagation_delay = 5 * kMillisecond;
  cfg.queue_limit = 1 << 16;
  cfg.seed = seed;
  return cfg;
}

/// One fault level: `corrupt` drives per-frame damage, `outage_duty` the
/// fraction of each 200ms period the link spends dark.
FaultPlan make_plan(double corrupt, double outage_duty, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.payload_bitflip_rate = corrupt;
  plan.header_byte_rate = corrupt / 4;
  plan.truncate_rate = corrupt / 4;
  if (outage_duty > 0) {
    plan.outage_period = 200 * kMillisecond;
    plan.outage_duration =
        static_cast<SimDuration>(outage_duty * 200 * kMillisecond);
  }
  return plan;
}

FaultResult run_stream(double corrupt, double outage_duty, std::uint64_t seed) {
  EventLoop loop;
  // Offsets keep --seed=1 (the default) on the historical 11/12/31 plan.
  DuplexChannel ch(loop, data_link(seed + 10), data_link(seed + 11));
  LinkPath raw(ch.forward), ack_tx(ch.reverse), ack_rx(ch.reverse);
  FaultyPath data(loop, raw, make_plan(corrupt, outage_duty, seed + 30));

  StreamSenderConfig scfg;
  StreamSender sender(loop, data, ack_rx, scfg);
  StreamReceiver receiver(loop, data, ack_tx);

  AppModel app;
  receiver.set_on_data([&](ConstBytes b) { app.consume(loop.now(), b.size()); });

  ByteBuffer file(kFileBytes);
  Rng rng(1);
  rng.fill(file.span());
  std::size_t offset = 0;
  std::function<void()> feed = [&] {
    offset += sender.send(file.subspan(offset, 256 * 1024));
    if (offset < kFileBytes) {
      loop.schedule_after(kMillisecond, feed);
    } else {
      sender.close();
    }
  };
  feed();
  loop.run_until(kRunCap);

  FaultResult r;
  r.finished = app.bytes == kFileBytes;
  r.completion_s = to_seconds(r.finished ? app.busy_until : kRunCap);
  r.goodput_mbps = megabits_per_second(app.bytes, r.completion_s);
  return r;
}

FaultResult run_alf(double corrupt, double outage_duty, std::uint64_t seed) {
  EventLoop loop;
  DuplexChannel ch(loop, data_link(seed + 20), data_link(seed + 21));
  LinkPath raw(ch.forward), fb_tx(ch.reverse), fb_rx(ch.reverse);
  FaultyPath data(loop, raw, make_plan(corrupt, outage_duty, seed + 30));

  alf::SessionConfig scfg;
  scfg.nack_delay = 15 * kMillisecond;
  scfg.nack_retry = 30 * kMillisecond;
  scfg.max_nacks = 30;
  scfg.stall_timeout = 20 * kSecond;
  alf::AlfSender sender(loop, data, fb_rx, scfg);
  alf::AlfReceiver receiver(loop, data, fb_tx, scfg);

  AppModel app;
  receiver.set_on_adu([&](Adu&& a) { app.consume(loop.now(), a.payload.size()); });

  ByteBuffer file(kFileBytes);
  Rng rng(1);
  rng.fill(file.span());
  for (std::size_t off = 0; off < kFileBytes; off += kAduSize) {
    const std::size_t len = std::min(kAduSize, kFileBytes - off);
    auto name = FileRegionName{off, len}.to_name();
    auto res = sender.send_adu(name, file.span().subspan(off, len));
    if (!res.ok()) std::abort();
  }
  sender.finish();
  loop.run_until(kRunCap);

  FaultResult r;
  r.finished = receiver.complete();
  r.completion_s = to_seconds(r.finished ? app.busy_until : kRunCap);
  r.goodput_mbps = megabits_per_second(app.bytes, r.completion_s);
  r.abandoned = receiver.stats().adus_abandoned;
  r.watchdog = receiver.failed() || sender.failed();
  return r;
}

void print_row(const char* label, const FaultResult& s, const FaultResult& a) {
  char alf_end[32];
  if (a.watchdog) {
    std::snprintf(alf_end, sizeof alf_end, "watchdog");
  } else if (!a.finished) {
    std::snprintf(alf_end, sizeof alf_end, "DNF");
  } else if (a.abandoned > 0) {
    std::snprintf(alf_end, sizeof alf_end, "%llu lost",
                  static_cast<unsigned long long>(a.abandoned));
  } else {
    std::snprintf(alf_end, sizeof alf_end, "complete");
  }
  std::printf("%9s | %8.3f %8.1f %9s | %8.3f %8.1f %10s\n", label,
              s.completion_s, s.goodput_mbps, s.finished ? "complete" : "DNF",
              a.completion_s, a.goodput_mbps, alf_end);
}

/// One sweep point as a JSON object for the machine-readable summary.
std::string json_point(const char* sweep, double level, const FaultResult& s,
                       const FaultResult& a) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"sweep\":\"%s\",\"level\":%g,"
                "\"stream_mbps\":%.1f,\"stream_done\":%s,"
                "\"alf_mbps\":%.1f,\"alf_done\":%s,\"alf_abandoned\":%llu}",
                sweep, level, s.goodput_mbps, s.finished ? "true" : "false",
                a.goodput_mbps, a.finished ? "true" : "false",
                static_cast<unsigned long long>(a.abandoned));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const ngp::bench::Args args = ngp::bench::parse_args(&argc, argv);
  const std::uint64_t seed = args.seed;

  std::printf("=== E8: goodput under injected faults, stream vs ALF ===\n");
  std::printf("file %zu bytes, link %.0f Mb/s, app %.0f Mb/s, cap %.0fs, seed %llu\n\n",
              static_cast<std::size_t>(kFileBytes), kLinkBps / 1e6, kAppBps / 1e6,
              to_seconds(kRunCap), static_cast<unsigned long long>(seed));

  std::string points;
  const auto add_point = [&points](const std::string& p) {
    if (!points.empty()) points += ',';
    points += p;
  };

  std::printf("-- corruption sweep (bit-flips + header damage + truncation) --\n");
  std::printf("%9s | %8s %8s %9s | %8s %8s %10s\n", "corrupt", "time(s)", "Mb/s",
              "stream", "time(s)", "Mb/s", "ALF");
  for (double c : {0.0, 0.005, 0.01, 0.02, 0.05, 0.1}) {
    char label[16];
    std::snprintf(label, sizeof label, "%.1f%%", c * 100);
    const FaultResult s = run_stream(c, 0, seed);
    const FaultResult a = run_alf(c, 0, seed);
    print_row(label, s, a);
    add_point(json_point("corrupt", c, s, a));
  }

  std::printf("\n-- outage sweep (flaps, 200ms period; 0.5%% corruption) --\n");
  std::printf("%9s | %8s %8s %9s | %8s %8s %10s\n", "dark", "time(s)", "Mb/s",
              "stream", "time(s)", "Mb/s", "ALF");
  for (double d : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    char label[16];
    std::snprintf(label, sizeof label, "%.0f%%", d * 100);
    const FaultResult s = run_stream(0.005, d, seed);
    const FaultResult a = run_alf(0.005, d, seed);
    print_row(label, s, a);
    add_point(json_point("outage", d, s, a));
  }

  std::printf("\nshape check: ALF ends every run decisively (complete, bounded\n"
              "abandonment, or watchdog) while keeping goodput closer to the\n"
              "fault-free case than the in-order stream.\n");

  char json[128];
  std::snprintf(json, sizeof json, "{\"seed\":%llu,\"points\":[",
                static_cast<unsigned long long>(seed));
  ngp::bench::emit_json("FAULTS_SWEEP_JSON", std::string(json) + points + "]}");
  return 0;
}
