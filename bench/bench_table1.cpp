// bench_table1 — reproduces Table 1: "Speed in Mb/s for manipulation
// operations" (copy and checksum, hand-coded unrolled loops, uVax III and
// MIPS R2000).
//
//           | uVax | R2000            paper's numbers
//   Copy    |  42  |  130
//   Checksum|  60  |  115
//
// We run the same two kernels (plus naive and libc variants for context) on
// the host CPU. Absolute numbers are ~2-3 orders of magnitude higher on
// modern hardware; the reproduction targets the SHAPE: copy and checksum
// run at the same order of magnitude because both are memory-bound, with
// the checksum somewhat slower than copy on a machine with wide loads
// (R2000 column) — and both are catastrophically slower if coded naively.
//
// Also registers google-benchmark timers for fine-grained statistics.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "checksum/internet.h"
#include "ilp/kernels.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace {

using namespace ngp;

ByteBuffer make_buffer(std::size_t n) {
  ByteBuffer b(n);
  Rng rng(0xBEEF);
  rng.fill(b.span());
  return b;
}

// ---- google-benchmark registrations -------------------------------------------

void BM_CopyBytewise(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ByteBuffer src = make_buffer(n), dst(n);
  for (auto _ : state) {
    copy_bytewise(src.span(), dst.span());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CopyBytewise)->Arg(4000)->Arg(65536)->Arg(1 << 20);

void BM_CopyUnrolled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ByteBuffer src = make_buffer(n), dst(n);
  for (auto _ : state) {
    copy_unrolled(src.span(), dst.span());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CopyUnrolled)->Arg(4000)->Arg(65536)->Arg(1 << 20);

void BM_CopyMemcpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ByteBuffer src = make_buffer(n), dst(n);
  for (auto _ : state) {
    copy_memcpy(src.span(), dst.span());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CopyMemcpy)->Arg(4000)->Arg(65536)->Arg(1 << 20);

void BM_ChecksumBytewise(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ByteBuffer src = make_buffer(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(internet_checksum_bytewise(src.span()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChecksumBytewise)->Arg(4000)->Arg(65536)->Arg(1 << 20);

void BM_ChecksumWordwise(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ByteBuffer src = make_buffer(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(internet_checksum(src.span()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChecksumWordwise)->Arg(4000)->Arg(65536)->Arg(1 << 20);

void BM_ChecksumUnrolled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ByteBuffer src = make_buffer(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(internet_checksum_unrolled(src.span()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChecksumUnrolled)->Arg(4000)->Arg(65536)->Arg(1 << 20);

// ---- Paper-style summary table -------------------------------------------------

void print_table1() {
  using ngp::bench::measure_mbps;
  // The paper's workload: "a typical large packet today might have 4000
  // bytes" — measure at 4000 bytes like Table 1's context implies.
  const std::size_t n = 4000;
  ByteBuffer src = make_buffer(n), dst(n);

  const double copy =
      measure_mbps(n, [&] { copy_unrolled(src.span(), dst.span()); });
  volatile std::uint16_t sink = 0;
  const double cksum = measure_mbps(n, [&] {
    sink = internet_checksum_unrolled(src.span());
  });
  (void)sink;

  ngp::bench::print_header("Table 1: Speed in Mb/s for manipulation operations");
  std::printf("  %-12s | %10s | %6s | %6s\n", "", "this host", "uVax", "R2000");
  std::printf("  %-12s | %10.0f | %6d | %6d\n", "Copy", copy, 42, 130);
  std::printf("  %-12s | %10.0f | %6d | %6d\n", "Checksum", cksum, 60, 115);
  std::printf("  checksum/copy ratio: this host %.2f, uVax %.2f, R2000 %.2f\n",
              cksum / copy, 60.0 / 42.0, 115.0 / 130.0);
  std::printf("  shape check: both kernels within one order of magnitude -> %s\n",
              (cksum / copy > 0.1 && cksum / copy < 10.0) ? "HOLDS" : "FAILS");

  // §4 cost taxonomy for the two kernels: copy = 1 load + 1 store per
  // word; checksum = 1 load per word, no stores. Both are single-pass —
  // which is WHY they land within one order of magnitude above.
  obs::CostAccount copy_cost, cksum_cost;
  copy_cost.charge_fused(n);
  cksum_cost.charge_operation(n);
  cksum_cost.charge_pass(n, /*stores=*/false);
  obs::MetricsRegistry reg;
  reg.add_source("table1.copy",
                 [&](obs::MetricSink& s) { obs::emit_cost(s, "cost", copy_cost); });
  reg.add_source("table1.checksum",
                 [&](obs::MetricSink& s) { obs::emit_cost(s, "cost", cksum_cost); });
  std::printf("COST_PROFILE_JSON %s\n", reg.snapshot().to_json().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table1();
  return 0;
}
