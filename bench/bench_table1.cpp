// bench_table1 — reproduces Table 1: "Speed in Mb/s for manipulation
// operations" (copy and checksum, hand-coded unrolled loops, uVax III and
// MIPS R2000).
//
//           | uVax | R2000            paper's numbers
//   Copy    |  42  |  130
//   Checksum|  60  |  115
//
// We run the same two kernels (plus naive and libc variants for context) on
// the host CPU. Absolute numbers are ~2-3 orders of magnitude higher on
// modern hardware; the reproduction targets the SHAPE: copy and checksum
// run at the same order of magnitude because both are memory-bound, with
// the checksum somewhat slower than copy on a machine with wide loads
// (R2000 column) — and both are catastrophically slower if coded naively.
//
// Also registers google-benchmark timers for fine-grained statistics.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "buf/chain_ops.h"
#include "buf/pool.h"
#include "checksum/internet.h"
#include "crypto/chacha20.h"
#include "ilp/kernels.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "presentation/plan.h"
#include "simd/dispatch.h"
#include "util/rng.h"

namespace {

using namespace ngp;

ByteBuffer make_buffer(std::size_t n) {
  ByteBuffer b(n);
  Rng rng(0xBEEF);
  rng.fill(b.span());
  return b;
}

// ---- google-benchmark registrations -------------------------------------------

void BM_CopyBytewise(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ByteBuffer src = make_buffer(n), dst(n);
  for (auto _ : state) {
    copy_bytewise(src.span(), dst.span());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CopyBytewise)->Arg(4000)->Arg(65536)->Arg(1 << 20);

void BM_CopyUnrolled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ByteBuffer src = make_buffer(n), dst(n);
  for (auto _ : state) {
    copy_unrolled(src.span(), dst.span());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CopyUnrolled)->Arg(4000)->Arg(65536)->Arg(1 << 20);

void BM_CopyMemcpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ByteBuffer src = make_buffer(n), dst(n);
  for (auto _ : state) {
    copy_memcpy(src.span(), dst.span());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CopyMemcpy)->Arg(4000)->Arg(65536)->Arg(1 << 20);

void BM_ChecksumBytewise(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ByteBuffer src = make_buffer(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(internet_checksum_bytewise(src.span()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChecksumBytewise)->Arg(4000)->Arg(65536)->Arg(1 << 20);

void BM_ChecksumWordwise(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ByteBuffer src = make_buffer(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(internet_checksum(src.span()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChecksumWordwise)->Arg(4000)->Arg(65536)->Arg(1 << 20);

void BM_ChecksumUnrolled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ByteBuffer src = make_buffer(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(internet_checksum_unrolled(src.span()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChecksumUnrolled)->Arg(4000)->Arg(65536)->Arg(1 << 20);

// ---- Paper-style summary table -------------------------------------------------

void print_table1(ngp::bench::BenchReport& rep) {
  using ngp::bench::measure_mbps;
  // The paper's workload: "a typical large packet today might have 4000
  // bytes" — measure at 4000 bytes like Table 1's context implies.
  const std::size_t n = 4000;
  ByteBuffer src = make_buffer(n), dst(n);

  const double copy =
      measure_mbps(n, [&] { copy_unrolled(src.span(), dst.span()); });
  volatile std::uint16_t sink = 0;
  const double cksum = measure_mbps(n, [&] {
    sink = internet_checksum_unrolled(src.span());
  });
  (void)sink;

  ngp::bench::print_header("Table 1: Speed in Mb/s for manipulation operations");
  std::printf("  %-12s | %10s | %6s | %6s\n", "", "this host", "uVax", "R2000");
  std::printf("  %-12s | %10.0f | %6d | %6d\n", "Copy", copy, 42, 130);
  std::printf("  %-12s | %10.0f | %6d | %6d\n", "Checksum", cksum, 60, 115);
  std::printf("  checksum/copy ratio: this host %.2f, uVax %.2f, R2000 %.2f\n",
              cksum / copy, 60.0 / 42.0, 115.0 / 130.0);
  std::printf("  shape check: both kernels within one order of magnitude -> %s\n",
              (cksum / copy > 0.1 && cksum / copy < 10.0) ? "HOLDS" : "FAILS");
  rep.tracked("copy_mbps", copy, /*higher=*/true, 0.5)
      .tracked("checksum_mbps", cksum, /*higher=*/true, 0.5)
      .metric("checksum_copy_ratio", cksum / copy)
      .hold("kernels_same_order_of_magnitude",
            cksum / copy > 0.1 && cksum / copy < 10.0);

  // §4 cost taxonomy for the two kernels: copy = 1 load + 1 store per
  // word; checksum = 1 load per word, no stores. Both are single-pass —
  // which is WHY they land within one order of magnitude above.
  obs::CostAccount copy_cost, cksum_cost;
  copy_cost.charge_fused(n);
  cksum_cost.charge_operation(n);
  cksum_cost.charge_pass(n, /*stores=*/false);
  obs::MetricsRegistry reg;
  reg.add_source("table1.copy",
                 [&](obs::MetricSink& s) { obs::emit_cost(s, "cost", copy_cost); });
  reg.add_source("table1.checksum",
                 [&](obs::MetricSink& s) { obs::emit_cost(s, "cost", cksum_cost); });
  std::printf("COST_PROFILE_JSON %s\n", reg.snapshot().to_json().c_str());
}

// ---- Kernel-tier sweep (Table 1 on every dispatch tier) ------------------------
//
// The same manipulation kernels, once per SIMD tier this host supports.
// Throughput moves with the tier; the §4 pass structure (COST_PROFILE_JSON
// above) does not — the dispatch table changes instructions per word, not
// memory passes. The headline check is the paper's own fusion workload:
// the fused decrypt+checksum+byteswap kernel on the best tier must clear
// 1.5x its scalar version, mirroring the 1.5x the paper measured for
// hand-integrated copy+checksum.
//
// The last column is the §13 workload: compiled-plan decode of the same
// bytes as an XDR int-array record. The plan's array step calls the
// tiered byteswap32 kernel, so presentation decode rides the dispatch
// table exactly like the raw manipulation kernels above it — the point
// of compiling plans down to these kernels in the first place.
void print_kernel_tiers(ngp::bench::BenchReport& rep) {
  using ngp::bench::measure_mbps;
  const std::size_t n = 64 * 1024;
  ByteBuffer src = make_buffer(n), dst = make_buffer(n);
  ChaChaKey key{};
  for (std::size_t i = 0; i < key.key.size(); ++i) {
    key.key[i] = static_cast<std::uint8_t>(i * 5 + 1);
  }

  // The Table-1 payload reinterpreted as the §13 record workload.
  const RecordSchema schema{"table1", {FieldType::kInt32Array}};
  const auto plan = presentation::cached_plan(schema, TransferSyntax::kXdr);
  std::vector<std::int32_t> values(n / 4);
  Rng vrng(0xCAFE);
  for (auto& x : values) x = static_cast<std::int32_t>(vrng.next());
  Record record;
  record.emplace_back(std::move(values));
  const auto record_wire = presentation::plan_encode(*plan, record);

  struct TierRow {
    simd::KernelTier tier;
    double copy, cksum, crc, chacha, fused, plan_decode;
  };
  const simd::KernelTier saved = simd::active_tier();
  std::vector<TierRow> rows;
  for (std::size_t t = 0; t < simd::kKernelTierCount; ++t) {
    const auto tier = static_cast<simd::KernelTier>(t);
    const simd::KernelTable* table = simd::tier_table(tier);
    if (table == nullptr) continue;  // not supported on this host
    simd::set_active_tier(tier);
    const simd::KernelTable& k = *table;
    TierRow r{tier, 0, 0, 0, 0, 0, 0};
    r.copy = measure_mbps(n, [&] {
      k.copy(src.span(), dst.span());
      benchmark::DoNotOptimize(dst.data());
    });
    volatile std::uint32_t sink = 0;
    r.cksum = measure_mbps(n, [&] { sink = k.internet_checksum(src.span()); });
    r.crc = measure_mbps(n, [&] { sink = k.crc32(src.span()); });
    r.chacha = measure_mbps(n, [&] {
      k.chacha20_xor(key, 0, dst.span());
      benchmark::DoNotOptimize(dst.data());
    });
    r.fused = measure_mbps(n, [&] {
      sink = k.decrypt_checksum_byteswap(key, 0, dst.span());
    });
    if (record_wire.ok()) {
      r.plan_decode = measure_mbps(n, [&] {
        auto out = presentation::plan_decode(*plan, record_wire->span());
        benchmark::DoNotOptimize(out.ok());
      });
    }
    (void)sink;
    rows.push_back(r);
  }
  simd::set_active_tier(saved);

  ngp::bench::print_header("Kernel tiers: dispatch-table Mb/s per SIMD level");
  std::printf("  %-8s %10s %10s %10s %10s %14s %12s\n", "tier", "copy", "cksum",
              "crc32", "chacha20", "dec+ck+swap", "plan(xdr)");
  for (const auto& r : rows) {
    std::printf("  %-8s %10.0f %10.0f %10.0f %10.0f %14.0f %12.0f\n",
                simd::tier_name(r.tier), r.copy, r.cksum, r.crc, r.chacha,
                r.fused, r.plan_decode);
  }

  double scalar_fused = 0, best_fused = 0;
  for (const auto& r : rows) {
    if (r.tier == simd::KernelTier::kScalar) scalar_fused = r.fused;
    if (r.tier == simd::best_tier()) best_fused = r.fused;
  }
  const double ratio = scalar_fused > 0 ? best_fused / scalar_fused : 0.0;
  std::printf("  best tier (%s) fused decrypt+cksum+swap vs scalar: %.2fx\n",
              simd::tier_name(simd::best_tier()), ratio);
  std::printf("  shape check: vectorized fusion >= 1.5x scalar fusion -> %s\n",
              ratio >= 1.5 ? "HOLDS" : "FAILS");
  rep.tracked("best_vs_scalar_fused", ratio, /*higher=*/true, 0.4)
      .hold("vector_fusion_beats_scalar_15x", ratio >= 1.5);

  std::string points;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s{\"tier\":\"%s\",\"copy_mbps\":%.0f,"
                  "\"internet_checksum_mbps\":%.0f,\"crc32_mbps\":%.0f,"
                  "\"chacha20_mbps\":%.0f,\"fused_decrypt_cksum_swap_mbps\":%.0f,"
                  "\"plan_decode_xdr_mbps\":%.0f}",
                  i ? "," : "", simd::tier_name(rows[i].tier), rows[i].copy,
                  rows[i].cksum, rows[i].crc, rows[i].chacha, rows[i].fused,
                  rows[i].plan_decode);
    points += buf;
  }
  char head[160];
  std::snprintf(head, sizeof head,
                "{\"bytes\":%zu,\"best_tier\":\"%s\","
                "\"best_vs_scalar_fused\":%.2f,\"tiers\":[",
                n, simd::tier_name(simd::best_tier()), ratio);
  ngp::bench::emit_json("KERNEL_TIERS_JSON", std::string(head) + points + "]}");
}

// ---- Copy ledger at kernel granularity (DESIGN.md §12) -------------------------
//
// Table 1's kernels, arranged as the two receive routes a fragment can
// take. Flat route: stage the wire bytes, checksum, then copy into the
// final buffer — two store passes plus a load pass. Chain route: checksum
// the pooled segments where the (simulated) wire left them — one load-only
// gather pass, zero stores; the application scatters at final placement
// only if it must. Throughput is measured; the ledger rows are the §4
// analytic pass counts the ALF endpoints actually charge.
void print_copy_ledger(ngp::bench::BenchReport& rep) {
  using ngp::bench::measure_mbps;
  const std::size_t n = 64 * 1024;
  const std::size_t kFrag = 1400;  // MTU-ish segments, like the rx pool holds
  ByteBuffer wire = make_buffer(n);
  ByteBuffer staging(n), final_buf(n);

  volatile std::uint16_t sink = 0;
  const double flat = measure_mbps(n, [&] {
    copy_unrolled(wire.span(), staging.span());
    sink = internet_checksum_unrolled(staging.span());
    copy_unrolled(staging.span(), final_buf.span());
    benchmark::DoNotOptimize(final_buf.data());
  });

  buf::BufferPool pool;
  buf::BufChain chain;
  for (std::size_t off = 0; off < n; off += kFrag) {
    const std::size_t len = std::min(kFrag, n - off);
    buf::BufRef ref = pool.alloc(len);
    std::memcpy(ref.data(), wire.data() + off, len);
    chain.append(buf::Slice{std::move(ref), 0, len});
  }
  const double pooled = measure_mbps(n, [&] {
    sink = buf::chain_internet_checksum(chain);
  });
  (void)sink;

  obs::CostAccount flat_cost, pooled_cost;
  flat_cost.charge_operation(n);
  flat_cost.charge_fused(n);                 // staging copy
  flat_cost.charge_pass(n, /*stores=*/false);  // checksum
  flat_cost.charge_fused(n);                 // placement copy
  pooled_cost.charge_operation(n);
  pooled_cost.charge_pass(n, /*stores=*/false);  // gather checksum, in place

  ngp::bench::print_header(
      "Copy ledger: flat receive route vs zero-copy chain route");
  std::printf("  %-40s %10s %14s\n", "", "Mb/s", "stored bytes");
  std::printf("  %-40s %10.0f %14llu\n", "flat: stage + checksum + place", flat,
              static_cast<unsigned long long>(flat_cost.word_stores * 8));
  std::printf("  %-40s %10.0f %14llu\n", "chain: gather checksum in place",
              pooled,
              static_cast<unsigned long long>(pooled_cost.word_stores * 8));
  std::printf("  shape check: chain route stores nothing and is faster -> %s\n",
              (pooled_cost.word_stores == 0 && pooled > flat) ? "HOLDS"
                                                              : "FAILS");
  rep.metric("flat_route_mbps", flat)
      .metric("chain_route_mbps", pooled)
      .tracked("chain_stored_bytes", pooled_cost.word_stores * 8,
               /*higher=*/false, 0.0)
      .hold("chain_route_stores_nothing", pooled_cost.word_stores == 0);

  ngp::bench::emit_json("COPY_LEDGER_JSON",
                        ngp::bench::JsonWriter()
                            .field("bytes", n)
                            .field("fragment_bytes", kFrag)
                            .field("flat_mbps", flat)
                            .field("chain_mbps", pooled)
                            .field("flat_stored_bytes", flat_cost.word_stores * 8)
                            .field("chain_stored_bytes",
                                   pooled_cost.word_stores * 8)
                            .str());
}

}  // namespace

int main(int argc, char** argv) {
  const ngp::bench::Args args = ngp::bench::parse_args(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ngp::bench::BenchReport rep("table1", args);
  print_table1(rep);
  print_kernel_tiers(rep);
  print_copy_ledger(rep);
  if (!rep.emit("TABLE1_REPORT_JSON")) return 1;
  return 0;
}
