// bench_cells — reproduces E6 (§5 + footnote 9): ADUs over ATM cells.
//
//   paper: ATM segments data into 48-byte cells — "probably too small a
//   unit of data to permit manipulation operations to be synchronized on
//   each cell" — and cell loss must be handled above the cell (the
//   Adaptation Layer detects it; the ADU is the recovery unit).
//
// Two series:
//   (a) loss amplification: per-cell loss p vs per-ADU delivery rate for
//       several ADU sizes — survival ~ (1-p)^cells, so the ADU loss rate
//       is amplified by the cell count;
//   (b) the same ALF endpoints, unmodified, running over the packet path
//       and the cell path with recovery on — goodput and retransmit
//       volume, showing the ADU-sized recovery cost that motivates §5's
//       "ADU lengths should be reasonably bounded".
#include <cmath>
#include <cstdio>

#include "alf/receiver.h"
#include "alf/sender.h"
#include "netsim/cell_link.h"
#include "netsim/net_path.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace ngp;

LinkConfig cell_cfg(std::uint64_t seed) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 150e6;  // SONET-ish ATM rate
  cfg.propagation_delay = 2 * kMillisecond;
  // Deep queue: the amplification series offers hundreds of thousands of
  // cells back to back, and tail-drop would contaminate the loss-rate
  // measurement (only the Bernoulli process should drop cells here).
  cfg.queue_limit = 1 << 21;
  cfg.seed = seed;
  return cfg;
}

void series_amplification() {
  std::printf("=== E6a: cell-loss -> ADU-loss amplification (no recovery) ===\n");
  std::printf("%10s | %8s | %12s | %12s | %12s\n", "ADU bytes", "cells",
              "cell loss", "ADU loss", "(1-p)^n");

  for (std::size_t adu : {100u, 1000u, 4000u, 16000u}) {
    for (double p : {0.001, 0.01, 0.05}) {
      EventLoop loop;
      CellLink cells(loop, cell_cfg(static_cast<std::uint64_t>(adu * 1000 + p * 1e4)),
                     /*max_frame=*/65535);
      cells.set_cell_loss_rate(p);
      int delivered = 0;
      cells.set_handler([&](ConstBytes) { ++delivered; });
      ByteBuffer frame(adu);
      const int n = 2000;
      for (int i = 0; i < n; ++i) cells.send(frame.span());
      loop.run();
      const double ncells = static_cast<double>(CellLink::cells_for_frame(adu));
      std::printf("%10zu | %8.0f | %11.1f%% | %11.1f%% | %11.1f%%\n", adu, ncells,
                  p * 100, 100.0 * (1.0 - static_cast<double>(delivered) / n),
                  100.0 * (1.0 - std::pow(1 - p, ncells)));
    }
  }
  std::printf("shape check: ADU loss >> cell loss, growing with ADU size -> see rows\n\n");
}

struct PathResult {
  double completion_s;
  std::uint64_t adus_retransmitted;
  std::uint64_t payload_sent;
  double goodput_mbps;
};

PathResult run_alf_over(NetPath& data, Link& feedback_link, EventLoop& loop,
                        std::size_t adu_size, std::size_t total_bytes) {
  LinkPath fb_tx(feedback_link), fb_rx(feedback_link);
  alf::SessionConfig scfg;
  scfg.nack_delay = 10 * kMillisecond;
  scfg.nack_retry = 25 * kMillisecond;
  alf::AlfSender sender(loop, data, fb_rx, scfg);
  alf::AlfReceiver receiver(loop, data, fb_tx, scfg);

  std::uint64_t delivered_bytes = 0;
  receiver.set_on_adu([&](Adu&& a) { delivered_bytes += a.payload.size(); });

  ByteBuffer file(total_bytes);
  Rng rng(3);
  rng.fill(file.span());
  for (std::size_t off = 0; off < total_bytes; off += adu_size) {
    const std::size_t len = std::min(adu_size, total_bytes - off);
    if (!sender.send_adu(FileRegionName{off, len}.to_name(),
                         file.span().subspan(off, len))
             .ok()) {
      std::abort();
    }
  }
  sender.finish();
  loop.run();

  PathResult r;
  r.completion_s = to_seconds(loop.now());
  r.adus_retransmitted = sender.stats().adus_retransmitted;
  r.payload_sent = sender.stats().payload_bytes_sent;
  r.goodput_mbps = megabits_per_second(delivered_bytes, r.completion_s);
  return r;
}

void series_alf_over_cells() {
  std::printf("=== E6b: same ALF endpoints over packets vs ATM cells ===\n");
  const std::size_t total = 1 << 20;
  std::printf("transfer %zu bytes, 1%% unit loss on each substrate\n", total);
  std::printf("%10s | %9s | %8s | %10s | %12s\n", "ADU bytes", "substrate",
              "time(s)", "Mb/s", "ADU rtx");

  for (std::size_t adu : {1000u, 4000u, 16000u}) {
    {
      EventLoop loop;
      LinkConfig pkt = cell_cfg(500 + adu);
      pkt.mtu = 1500;
      Link packet_link(loop, pkt);
      packet_link.set_loss_rate(0.01);
      LinkPath packets(packet_link);
      Link fb(loop, cell_cfg(501 + adu));
      PathResult r = run_alf_over(packets, fb, loop, adu, total);
      std::printf("%10zu | %9s | %8.3f | %10.1f | %12zu\n", adu, "packet",
                  r.completion_s, r.goodput_mbps,
                  static_cast<std::size_t>(r.adus_retransmitted));
    }
    {
      EventLoop loop;
      CellLink cells(loop, cell_cfg(600 + adu));
      cells.set_cell_loss_rate(0.01);
      Link fb(loop, cell_cfg(601 + adu));
      PathResult r = run_alf_over(cells, fb, loop, adu, total);
      std::printf("%10zu | %9s | %8.3f | %10.1f | %12zu\n", adu, "ATM cell",
                  r.completion_s, r.goodput_mbps,
                  static_cast<std::size_t>(r.adus_retransmitted));
    }
  }
  std::printf("\nshape checks (paper §5): the protocol runs unmodified over both\n"
              "substrates (ADU decouples architecture from transmission unit);\n"
              "larger ADUs suffer more retransmission volume per unit loss —\n"
              "\"ADU lengths should be reasonably bounded\".\n");
}

}  // namespace

int main() {
  series_amplification();
  series_alf_over_cells();
  return 0;
}
