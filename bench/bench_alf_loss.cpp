// bench_alf_loss — reproduces E5 (§5): the head-of-line-blocking argument.
//
//   paper: "a lost packet stops the application from performing
//   presentation conversion, and to the extent it is the bottleneck, it
//   can never catch up." ALF's complete-ADU out-of-order delivery keeps
//   the application pipeline busy through recovery.
//
// Setup: transfer a file over a lossy simulated link, once with the
// TCP-like in-order stream transport and once with the ALF transport. The
// receiving application is presentation-bound: it consumes delivered data
// at a fixed rate LOWER than the link rate (the paper's premise that the
// application is the bottleneck). We model the application as a busy-until
// clock in simulated time: work arrives when the transport delivers it;
// idle gaps can never be made up.
//
// Reported per loss rate: completion time of the application pipeline,
// application idle time, and effective goodput. Shape to reproduce: the
// stream transport's completion time grows sharply with loss (the app
// starves during recovery), while ALF degrades only by the retransmitted
// volume.
#include <cstdio>
#include <map>
#include <vector>

#include "alf/receiver.h"
#include "alf/sender.h"
#include "netsim/net_path.h"
#include "transport/stream_receiver.h"
#include "transport/stream_sender.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace ngp;

constexpr std::size_t kFileBytes = 2 << 20;   // 2 MB transfer
constexpr double kLinkBps = 50e6;             // 50 Mb/s link
constexpr double kAppBps = 30e6;              // app converts at 30 Mb/s
constexpr std::size_t kAduSize = 8000;        // ~2 packets per ADU

/// Models the presentation-bound application: work is serialized onto a
/// busy-until clock; idle time accumulates whenever delivery starves it.
struct AppModel {
  SimTime busy_until = 0;
  SimDuration idle = 0;
  std::uint64_t bytes = 0;

  void consume(SimTime now, std::size_t n) {
    if (now > busy_until) {
      idle += now - busy_until;
      busy_until = now;
    }
    busy_until += transmission_time(n, kAppBps);
    bytes += n;
  }
};

struct RunResult {
  double completion_s = 0;  ///< when the app finished the last byte
  double idle_s = 0;
  double goodput_mbps = 0;
  std::uint64_t retransmit_bytes = 0;
};

LinkConfig data_link(double loss, std::uint64_t seed) {
  LinkConfig cfg;
  cfg.bandwidth_bps = kLinkBps;
  cfg.propagation_delay = 5 * kMillisecond;
  cfg.queue_limit = 1 << 16;
  cfg.seed = seed;
  (void)loss;
  return cfg;
}

RunResult run_stream(double loss) {
  EventLoop loop;
  DuplexChannel ch(loop, data_link(loss, 11), data_link(0, 12));
  ch.forward.set_loss_rate(loss);
  LinkPath data(ch.forward), ack_tx(ch.reverse), ack_rx(ch.reverse);

  StreamSenderConfig scfg;
  StreamSender sender(loop, data, ack_rx, scfg);
  StreamReceiver receiver(loop, data, ack_tx);

  AppModel app;
  receiver.set_on_data([&](ConstBytes b) { app.consume(loop.now(), b.size()); });

  ByteBuffer file(kFileBytes);
  Rng rng(1);
  rng.fill(file.span());
  // Feed the transport as its buffer drains.
  std::size_t offset = 0;
  std::function<void()> feed = [&] {
    offset += sender.send(file.subspan(offset, 256 * 1024));
    if (offset < kFileBytes) {
      loop.schedule_after(kMillisecond, feed);
    } else {
      sender.close();
    }
  };
  feed();
  loop.run();

  RunResult r;
  r.completion_s = to_seconds(app.busy_until);
  r.idle_s = to_seconds(app.idle);
  r.goodput_mbps = megabits_per_second(app.bytes, r.completion_s);
  r.retransmit_bytes = sender.stats().retransmits * scfg.mss;
  return r;
}

RunResult run_alf(double loss) {
  EventLoop loop;
  DuplexChannel ch(loop, data_link(loss, 21), data_link(0, 22));
  ch.forward.set_loss_rate(loss);
  LinkPath data(ch.forward), fb_tx(ch.reverse), fb_rx(ch.reverse);

  alf::SessionConfig scfg;
  scfg.nack_delay = 15 * kMillisecond;
  scfg.nack_retry = 30 * kMillisecond;
  alf::AlfSender sender(loop, data, fb_rx, scfg);
  alf::AlfReceiver receiver(loop, data, fb_tx, scfg);

  AppModel app;
  receiver.set_on_adu([&](Adu&& a) { app.consume(loop.now(), a.payload.size()); });

  ByteBuffer file(kFileBytes);
  Rng rng(1);
  rng.fill(file.span());
  for (std::size_t off = 0; off < kFileBytes; off += kAduSize) {
    const std::size_t len = std::min(kAduSize, kFileBytes - off);
    auto name = FileRegionName{off, len}.to_name();
    auto res = sender.send_adu(name, file.span().subspan(off, len));
    if (!res.ok()) std::abort();
  }
  sender.finish();
  loop.run();

  RunResult r;
  r.completion_s = to_seconds(app.busy_until);
  r.idle_s = to_seconds(app.idle);
  r.goodput_mbps = megabits_per_second(app.bytes, r.completion_s);
  r.retransmit_bytes = sender.stats().adus_retransmitted * kAduSize;
  return r;
}

}  // namespace

int main() {
  std::printf("=== E5 (paper §5): in-order transport vs ALF under loss ===\n");
  std::printf("file %zu bytes, link %.0f Mb/s, presentation-bound app %.0f Mb/s\n\n",
              static_cast<std::size_t>(kFileBytes), kLinkBps / 1e6, kAppBps / 1e6);
  std::printf("%8s | %28s | %28s\n", "", "TCP-like in-order stream", "ALF out-of-order ADUs");
  std::printf("%8s | %8s %9s %8s | %8s %9s %8s\n", "loss", "time(s)", "idle(s)",
              "Mb/s", "time(s)", "idle(s)", "Mb/s");

  const double min_time = to_seconds(transmission_time(kFileBytes, kAppBps));
  double stream_degradation = 0, alf_degradation = 0;
  double stream_base = 0, alf_base = 0;

  for (double loss : {0.0, 0.001, 0.005, 0.01, 0.02, 0.05}) {
    RunResult s = run_stream(loss);
    RunResult a = run_alf(loss);
    std::printf("%7.1f%% | %8.3f %9.3f %8.1f | %8.3f %9.3f %8.1f\n", loss * 100,
                s.completion_s, s.idle_s, s.goodput_mbps, a.completion_s, a.idle_s,
                a.goodput_mbps);
    if (loss == 0.0) {
      stream_base = s.completion_s;
      alf_base = a.completion_s;
    }
    if (loss == 0.05) {
      stream_degradation = s.completion_s / stream_base;
      alf_degradation = a.completion_s / alf_base;
    }
  }

  std::printf("\napp-limited floor (zero idle): %.3f s\n", min_time);
  std::printf("degradation at 5%% loss: stream %.2fx, ALF %.2fx\n", stream_degradation,
              alf_degradation);
  std::printf("shape check (paper §5): ALF degrades less than the in-order stream\n"
              "under loss because complete ADUs keep the presentation pipeline\n"
              "busy during recovery -> %s\n",
              alf_degradation < stream_degradation ? "HOLDS" : "FAILS");
  return 0;
}
