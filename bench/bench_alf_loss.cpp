// bench_alf_loss — reproduces E5 (§5): the head-of-line-blocking argument.
//
//   paper: "a lost packet stops the application from performing
//   presentation conversion, and to the extent it is the bottleneck, it
//   can never catch up." ALF's complete-ADU out-of-order delivery keeps
//   the application pipeline busy through recovery.
//
// Setup: transfer a file over a lossy simulated link, once with the
// TCP-like in-order stream transport and once with the ALF transport. The
// receiving application is presentation-bound: it consumes delivered data
// at a fixed rate LOWER than the link rate (the paper's premise that the
// application is the bottleneck). We model the application as a busy-until
// clock in simulated time: work arrives when the transport delivers it;
// idle gaps can never be made up.
//
// Reported per loss rate: completion time of the application pipeline,
// application idle time, and effective goodput (E5_JSON lines). Shape to
// reproduce: the stream transport's completion time grows sharply with
// loss (the app starves during recovery), while ALF degrades only by the
// retransmitted volume.
//
// The flight recorder (obs/flight.h) traces both modes per ADU / file
// region: the FLIGHT_JSON line carries each mode's completion-latency
// p50/p99, quantifying §5 at the tail — the in-order stream's p99 must
// exceed ALF's under loss. The ALF run at the trace loss rate also exports
// a Perfetto trace (validated in-bench; --trace-out=PATH to keep it) and
// runs a TelemetryHub sampling the metrics registry with SLO watchdogs on
// reassembly-buffer high-water and NACK volume.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "alf/wire.h"
#include "bench_util.h"
#include "netsim/net_path.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "sessiond/sessiond.h"
#include "transport/stream_receiver.h"
#include "transport/stream_sender.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace ngp;

constexpr std::size_t kFileBytes = 2 << 20;   // 2 MB transfer
constexpr double kLinkBps = 50e6;             // 50 Mb/s link
constexpr double kAppBps = 30e6;              // app converts at 30 Mb/s
constexpr std::size_t kAduSize = 8000;        // ~2 packets per ADU
constexpr std::size_t kRegions = (kFileBytes + kAduSize - 1) / kAduSize;

constexpr std::size_t region_end(std::size_t i) {
  return std::min((i + 1) * kAduSize, kFileBytes);
}

/// Models the presentation-bound application: work is serialized onto a
/// busy-until clock; idle time accumulates whenever delivery starves it.
struct AppModel {
  SimTime busy_until = 0;
  SimDuration idle = 0;
  std::uint64_t bytes = 0;

  void consume(SimTime now, std::size_t n) {
    if (now > busy_until) {
      idle += now - busy_until;
      busy_until = now;
    }
    busy_until += transmission_time(n, kAppBps);
    bytes += n;
  }
};

struct RunResult {
  double completion_s = 0;  ///< when the app finished the last byte
  double idle_s = 0;
  double goodput_mbps = 0;
  std::uint64_t retransmit_bytes = 0;
  // Flight-recorder completion-latency summary (sim ns; 0 when untraced).
  std::size_t flight_n = 0;
  double flight_p50_ns = 0;
  double flight_p99_ns = 0;
  // ALF-run telemetry summary.
  std::uint64_t slo_firings = 0;
  std::size_t telemetry_samples = 0;
  std::string trace_json;       ///< Perfetto export (when requested)
  std::string telemetry_jsonl;  ///< time-series export (when requested)
};

LinkConfig data_link(double loss, std::uint64_t seed) {
  LinkConfig cfg;
  cfg.bandwidth_bps = kLinkBps;
  cfg.propagation_delay = 5 * kMillisecond;
  cfg.queue_limit = 1 << 16;
  cfg.seed = seed;
  (void)loss;
  return cfg;
}

void summarize_flight(const obs::FlightTable& t, RunResult& r) {
  using Seg = obs::FlightTable::Segment;
  r.flight_n = t.segment_count(Seg::kCompletion);
  r.flight_p50_ns = t.percentile(Seg::kCompletion, 50);
  r.flight_p99_ns = t.percentile(Seg::kCompletion, 99);
}

RunResult run_stream(double loss) {
  EventLoop loop;
  DuplexChannel ch(loop, data_link(loss, 11), data_link(0, 12));
  ch.forward.set_loss_rate(loss);
  LinkPath data(ch.forward), ack_tx(ch.reverse), ack_rx(ch.reverse);

  StreamSenderConfig scfg;
  StreamSender sender(loop, data, ack_rx, scfg);
  StreamReceiver receiver(loop, data, ack_tx);

  // The stream transport has no ADU concept — exactly the paper's point —
  // so the bench itself marks each kAduSize file region staged when the
  // sender accepts its last byte and delivered when the in-order stream
  // passes its end. Same table, same segments, comparable tails.
  auto rec = obs::make_loop_flight_recorder(loop);
  const std::uint16_t tx_track = rec.add_track("stream.tx");
  const std::uint16_t app_track = rec.add_track("stream.app");
  rec.set_enabled(true);
  std::size_t staged_region = 0;
  std::size_t done_region = 0;
  std::uint64_t delivered = 0;

  AppModel app;
  receiver.set_on_data([&](ConstBytes b) {
    app.consume(loop.now(), b.size());
    delivered += b.size();
    while (done_region < kRegions && region_end(done_region) <= delivered) {
      rec.record(app_track, obs::FlightStage::kDeliver,
                 obs::flight_trace_id(1, static_cast<std::uint32_t>(done_region) + 1),
                 region_end(done_region) - done_region * kAduSize);
      ++done_region;
    }
  });

  ByteBuffer file(kFileBytes);
  Rng rng(1);
  rng.fill(file.span());
  // Feed the transport as its buffer drains.
  std::size_t offset = 0;
  std::function<void()> feed = [&] {
    offset += sender.send(file.subspan(offset, 256 * 1024));
    while (staged_region < kRegions && region_end(staged_region) <= offset) {
      rec.record(tx_track, obs::FlightStage::kStaged,
                 obs::flight_trace_id(1, static_cast<std::uint32_t>(staged_region) + 1),
                 region_end(staged_region) - staged_region * kAduSize);
      ++staged_region;
    }
    if (offset < kFileBytes) {
      loop.schedule_after(kMillisecond, feed);
    } else {
      sender.close();
    }
  };
  feed();
  loop.run();

  RunResult r;
  r.completion_s = to_seconds(app.busy_until);
  r.idle_s = to_seconds(app.idle);
  r.goodput_mbps = megabits_per_second(app.bytes, r.completion_s);
  r.retransmit_bytes = sender.stats().retransmits * scfg.mss;
  summarize_flight(rec.latency_table(), r);
  return r;
}

RunResult run_alf(double loss, bool want_exports) {
  EventLoop loop;
  DuplexChannel ch(loop, data_link(loss, 21), data_link(0, 22));
  ch.forward.set_loss_rate(loss);
  LinkPath data(ch.forward), fb_tx(ch.reverse), fb_rx(ch.reverse);

  sessiond::Sessiond daemon(loop);
  auto scfg = alf::SessionConfig::builder()
                  .nack_delay(15 * kMillisecond)
                  .nack_retry(30 * kMillisecond)
                  .build();
  auto handle = daemon.open(scfg.value(), {&data, &fb_tx, &fb_rx});
  if (!handle.ok()) std::abort();
  sessiond::SessionHandle& sess = handle.value();

  // End-to-end flight recording: sender staging/framing, every data-link
  // event (tagged from the wire header — the link itself learns no ALF),
  // receiver reassembly/placement/delivery. Track registration order is
  // part of the trace schema — sender, link, receiver, as before.
  auto rec = obs::make_loop_flight_recorder(loop);
  sess.sender().set_flight(&rec);
  ch.forward.set_flight(&rec, "link.fwd", &alf::peek_flight_tag);
  sess.receiver().set_flight(&rec);
  rec.set_enabled(true);

  RunResult r;

  // Telemetry: sample the whole stack's registry on the sim clock; watch
  // the reassembly buffer (holes pinning memory) and the NACK volume.
  obs::MetricsRegistry reg;
  sess.sender().register_metrics(reg, "alf.tx");
  sess.receiver().register_metrics(reg, "alf.rx");
  ch.forward.register_metrics(reg, "link.fwd");
  obs::TelemetryConfig tcfg;
  tcfg.interval = 20 * kMillisecond;
  obs::TelemetryHub hub(&loop, reg, tcfg);
  obs::SloWatch buf_watch;
  buf_watch.metric = "alf.rx.reassembly_bytes";
  buf_watch.threshold = 32 * 1024.0;
  hub.add_watch(buf_watch, [&r](const obs::SloEvent&) { ++r.slo_firings; });
  obs::SloWatch nack_watch;
  nack_watch.metric = "alf.tx.nacks_received";
  nack_watch.threshold = 10.0;
  hub.add_watch(nack_watch, [&r](const obs::SloEvent&) { ++r.slo_firings; });
  hub.start();

  AppModel app;
  sess.set_on_adu([&](Adu&& a) { app.consume(loop.now(), a.payload.size()); });

  ByteBuffer file(kFileBytes);
  Rng rng(1);
  rng.fill(file.span());
  for (std::size_t off = 0; off < kFileBytes; off += kAduSize) {
    const std::size_t len = std::min(kAduSize, kFileBytes - off);
    auto name = FileRegionName{off, len}.to_name();
    auto res = sess.send_adu(name, file.span().subspan(off, len));
    if (!res.ok()) std::abort();
  }
  sess.finish();
  loop.run();

  r.completion_s = to_seconds(app.busy_until);
  r.idle_s = to_seconds(app.idle);
  r.goodput_mbps = megabits_per_second(app.bytes, r.completion_s);
  r.retransmit_bytes = sess.sender().stats().adus_retransmitted * kAduSize;
  summarize_flight(rec.latency_table(), r);
  r.telemetry_samples = hub.samples().size();
  if (want_exports) {
    r.trace_json = rec.to_perfetto_json();
    r.telemetry_jsonl = hub.to_jsonl();
    std::printf("\nALF per-ADU flight breakdown at %.1f%% loss (first rows):\n%s",
                loss * 100, rec.latency_table().to_text(8).c_str());
  }
  return r;
}

/// Bench-side schema self-check for the exported Perfetto trace: it must
/// be structurally valid JSON and carry the trace_event envelope keys.
bool trace_export_valid(const std::string& trace) {
  if (!ngp::bench::json_well_formed(trace)) return false;
  return trace.find("\"traceEvents\"") != std::string::npos &&
         trace.find("\"displayTimeUnit\"") != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ngp::bench::parse_args(&argc, argv);
  std::printf("=== E5 (paper §5): in-order transport vs ALF under loss ===\n");
  std::printf("file %zu bytes, link %.0f Mb/s, presentation-bound app %.0f Mb/s\n\n",
              static_cast<std::size_t>(kFileBytes), kLinkBps / 1e6, kAppBps / 1e6);
  std::printf("%8s | %28s | %28s\n", "", "TCP-like in-order stream", "ALF out-of-order ADUs");
  std::printf("%8s | %8s %9s %8s | %8s %9s %8s\n", "loss", "time(s)", "idle(s)",
              "Mb/s", "time(s)", "idle(s)", "Mb/s");

  const std::vector<double> sweep =
      args.smoke ? std::vector<double>{0.0, 0.02}
                 : std::vector<double>{0.0, 0.001, 0.005, 0.01, 0.02, 0.05};
  constexpr double kTraceLoss = 0.02;  ///< loss rate traced + exported

  const double min_time = to_seconds(transmission_time(kFileBytes, kAppBps));
  double stream_base = 0, alf_base = 0;
  double stream_degradation = 0, alf_degradation = 0;
  RunResult traced_stream, traced_alf;

  for (double loss : sweep) {
    RunResult s = run_stream(loss);
    RunResult a = run_alf(loss, loss == kTraceLoss);
    std::printf("%7.1f%% | %8.3f %9.3f %8.1f | %8.3f %9.3f %8.1f\n", loss * 100,
                s.completion_s, s.idle_s, s.goodput_mbps, a.completion_s, a.idle_s,
                a.goodput_mbps);
    ngp::bench::JsonWriter row;
    row.field("loss", loss)
        .field("stream_s", s.completion_s)
        .field("stream_idle_s", s.idle_s)
        .field("stream_mbps", s.goodput_mbps)
        .field("alf_s", a.completion_s)
        .field("alf_idle_s", a.idle_s)
        .field("alf_mbps", a.goodput_mbps)
        .field("alf_retransmit_bytes", a.retransmit_bytes);
    ngp::bench::emit_json("E5_JSON", row.str());
    if (loss == 0.0) {
      stream_base = s.completion_s;
      alf_base = a.completion_s;
    }
    if (loss == sweep.back()) {
      stream_degradation = s.completion_s / stream_base;
      alf_degradation = a.completion_s / alf_base;
    }
    if (loss == kTraceLoss) {
      traced_stream = std::move(s);
      traced_alf = std::move(a);
    }
  }

  std::printf("\napp-limited floor (zero idle): %.3f s\n", min_time);
  std::printf("degradation at %.1f%% loss: stream %.2fx, ALF %.2fx\n",
              sweep.back() * 100, stream_degradation, alf_degradation);
  std::printf("shape check (paper §5): ALF degrades less than the in-order stream\n"
              "under loss because complete ADUs keep the presentation pipeline\n"
              "busy during recovery -> %s\n",
              alf_degradation < stream_degradation ? "HOLDS" : "FAILS");

  // §5 at the tail, per ADU: the in-order stream's p99 region-completion
  // latency must exceed ALF's under the traced loss (head-of-line blocking
  // concentrates in the tail). Only measurable in NGP_OBS builds.
  if (obs::kEnabled) {
    const bool tail_holds =
        traced_stream.flight_p99_ns > traced_alf.flight_p99_ns;
    std::printf("\nper-ADU completion latency at %.1f%% loss (flight recorder):\n"
                "  stream: n=%zu p50=%.3f ms p99=%.3f ms\n"
                "  alf:    n=%zu p50=%.3f ms p99=%.3f ms\n"
                "tail check (stream p99 > alf p99): %s\n",
                kTraceLoss * 100, traced_stream.flight_n,
                traced_stream.flight_p50_ns / 1e6, traced_stream.flight_p99_ns / 1e6,
                traced_alf.flight_n, traced_alf.flight_p50_ns / 1e6,
                traced_alf.flight_p99_ns / 1e6, tail_holds ? "HOLDS" : "FAILS");
    ngp::bench::JsonWriter stream_j, alf_j, flight;
    stream_j.field("n", traced_stream.flight_n)
        .field("p50_ns", traced_stream.flight_p50_ns)
        .field("p99_ns", traced_stream.flight_p99_ns);
    alf_j.field("n", traced_alf.flight_n)
        .field("p50_ns", traced_alf.flight_p50_ns)
        .field("p99_ns", traced_alf.flight_p99_ns);
    flight.field("loss", kTraceLoss)
        .field("obs_enabled", true)
        .raw("stream", stream_j.str())
        .raw("alf", alf_j.str())
        .field("tail_holds", tail_holds);
    ngp::bench::emit_json("FLIGHT_JSON", flight.str());
  } else {
    ngp::bench::emit_json("FLIGHT_JSON",
                          ngp::bench::JsonWriter().field("obs_enabled", false).str());
  }

  ngp::bench::JsonWriter telem;
  telem.field("samples", traced_alf.telemetry_samples)
      .field("slo_firings", traced_alf.slo_firings);
  ngp::bench::emit_json("TELEMETRY_JSON", telem.str());

  // Self-check the exports: a trace that will not load in Perfetto, or a
  // telemetry line that is not valid JSON, fails the bench outright.
  if (!trace_export_valid(traced_alf.trace_json)) {
    std::fprintf(stderr, "FATAL: exported Perfetto trace failed validation\n");
    return 1;
  }
  std::size_t start = 0;
  while (start < traced_alf.telemetry_jsonl.size()) {
    std::size_t nl = traced_alf.telemetry_jsonl.find('\n', start);
    if (nl == std::string::npos) nl = traced_alf.telemetry_jsonl.size();
    const std::string_view line(traced_alf.telemetry_jsonl.data() + start, nl - start);
    if (!line.empty() && !ngp::bench::json_well_formed(line)) {
      std::fprintf(stderr, "FATAL: telemetry JSONL line failed validation\n");
      return 1;
    }
    start = nl + 1;
  }
  if (!args.trace_out.empty()) {
    std::FILE* f = std::fopen(args.trace_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL: cannot open %s\n", args.trace_out.c_str());
      return 1;
    }
    std::fwrite(traced_alf.trace_json.data(), 1, traced_alf.trace_json.size(), f);
    std::fclose(f);
    std::printf("wrote Perfetto trace to %s (open at https://ui.perfetto.dev)\n",
                args.trace_out.c_str());
  }
  return 0;
}
