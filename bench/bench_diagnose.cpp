// bench_diagnose — the self-diagnosing saturation harness as a binary
// (DESIGN.md §14). Drives a real workload to saturation, re-runs it under
// the single-operator perturbation registry, and prints the ranked
// bottleneck attribution table. The report's HOLDS are the harness's own
// acceptance checks: every perturbation must reproduce the baseline's
// delivered-output hash, the ledger deltas must match what §4 arithmetic
// predicts for each operator (exact per seed), and the SLO watchdogs must
// stay silent. Exits non-zero on any violation — this is the `ctest -L
// perf` smoke gate.
//
// Flags (besides the shared bench_util set):
//   --workload=datapath|sessiond_plane   which Workload to diagnose
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "perf/datapath.h"
#include "perf/harness.h"

namespace {

using namespace ngp;
using namespace ngp::perf;

const OperatorDelta* find_op(const PerfReport& r, const char* name) {
  for (const OperatorDelta& d : r.ranked) {
    if (d.op.name == name) return &d;
  }
  return nullptr;
}

double ledger_delta(const OperatorDelta* d, const char* key) {
  if (d == nullptr) return 0.0;
  const auto it = d->ledger_delta.find(key);
  return it != d->ledger_delta.end() ? it->second : 0.0;
}

/// A compute/concurrency perturbation must leave the deterministic §4
/// ledger untouched; delivery-side counters that legitimately track the
/// toggled feature flag itself are not cost.
bool cost_ledger_invariant(const OperatorDelta* d) {
  if (d == nullptr) return false;
  return d->ledger_delta.empty();
}

std::string ranked_json(const PerfReport& r) {
  std::string arr = "[";
  for (const OperatorDelta& d : r.ranked) {
    ngp::bench::JsonWriter w;
    w.field("operator", d.op.name)
        .field("kind", perturbation_kind_name(d.op.kind))
        .field("baseline_mbps", d.baseline_mbps)
        .field("perturbed_mbps", d.perturbed_mbps)
        .field("delta_mbps", d.delta_mbps)
        .field("delta_frac", d.delta_frac)
        .field("output_hash_matches", d.output_hash_matches);
    ngp::bench::JsonWriter lw;
    for (const auto& [k, v] : d.ledger_delta) lw.field(k, v);
    w.raw("ledger_delta", lw.str());
    if (arr.size() > 1) arr += ',';
    arr += w.str();
  }
  return arr + "]";
}

std::string steps_json(const SaturationResult& s) {
  std::string arr = "[";
  for (const SaturationPoint& p : s.steps) {
    ngp::bench::JsonWriter w;
    w.field("offered", p.offered).field("mbps", p.mbps);
    if (arr.size() > 1) arr += ',';
    arr += w.str();
  }
  return arr + "]";
}

int run_datapath(const ngp::bench::Args& args) {
  DatapathOptions opt =
      args.smoke ? DatapathOptions::smoke(args.seed) : DatapathOptions{};
  opt.seed = args.seed;
  if (args.threads > 0) opt.engine_workers = static_cast<unsigned>(args.threads);
  DatapathWorkload w(opt);

  SaturationOptions sopt;
  sopt.offered_start = 4;
  sopt.offered_max = args.smoke ? 32 : 128;
  sopt.repeats = args.smoke ? 1 : 3;

  PerfReport report = diagnose(w, sopt);

  // One extra UNMEASURED run at the saturation point with the flight
  // recorder on — recording during diagnose() would bias the baseline.
  w.set_collect_flight(true);
  (void)w.run(report.baseline.offered_at_saturation, "");
  w.set_collect_flight(false);
  report.flight_breakdown_json = w.last_flight_json();

  std::fputs(report.render_table().c_str(), stdout);
  if (!report.flight_breakdown_json.empty()) {
    std::printf("\nbaseline per-stage latency breakdown:\n");
    ngp::bench::emit_json("FLIGHT_BREAKDOWN_JSON", report.flight_breakdown_json);
  }

  const OperatorDelta* scalar = find_op(report, kPerturbScalarKernels);
  const OperatorDelta* unfuse = find_op(report, kPerturbUnfusePresentation);
  const OperatorDelta* no_pool = find_op(report, kPerturbDisableRxPool);
  const OperatorDelta* shrink = find_op(report, kPerturbShrinkEngineWorkers);
  const OperatorDelta* copy = find_op(report, kPerturbSyntheticCopy);

  bool hashes_ok = true;
  for (const OperatorDelta& d : report.ranked) {
    hashes_ok = hashes_ok && d.output_hash_matches;
  }
  bool slo_ok = report.baseline_slo_failures.empty();
  for (const OperatorDelta& d : report.ranked) slo_ok = slo_ok && d.slo_failures.empty();

  const RunMeasurement& base = report.baseline.at_saturation;
  const auto base_ledger = [&](const char* key) {
    const auto it = base.ledger.find(key);
    return it != base.ledger.end() ? it->second : 0.0;
  };

  ngp::bench::BenchReport rep("diagnose", args);
  // The wall ranking (machine-bound, tracked loosely) ...
  rep.tracked("sat_mbps", report.baseline.sat_mbps, /*higher=*/true, 0.6);
  rep.metric("offered_at_saturation", report.baseline.offered_at_saturation);
  rep.metric("operators_attributed", report.ranked.size());
  for (const OperatorDelta& d : report.ranked) {
    rep.metric("delta_frac_" + d.op.name, d.delta_frac);
  }
  // ... and the deterministic §4 surface (exact per seed, tracked at zero
  // tolerance: any future change that adds a copy or a pass fails the
  // trajectory until the baseline is regenerated deliberately).
  rep.tracked("host_copied_bytes", base_ledger("host_copied_bytes"),
              /*higher=*/false, 0.0);
  rep.tracked("memory_passes", base_ledger("memory_passes"), /*higher=*/false, 0.0);
  rep.tracked("app_store_bytes", base_ledger("app_store_bytes"),
              /*higher=*/false, 0.0);
  rep.tracked("payload_bytes_delivered", base_ledger("payload_bytes_delivered"),
              /*higher=*/true, 0.0);

  rep.hold("attributes_five_operators", report.ranked.size() >= 5);
  rep.hold("output_hash_invariant", hashes_ok);
  rep.hold("slo_watchdogs_silent", slo_ok);
  rep.hold("all_adus_delivered",
           base_ledger("adus_delivered") == static_cast<double>(opt.total_adus));
  // Tier-invariance by construction: kernels never touch ledgers.
  rep.hold("scalar_tier_ledger_invariant", cost_ledger_invariant(scalar));
  // Concurrency perturbation moves wall time only.
  rep.hold("worker_shrink_ledger_invariant", cost_ledger_invariant(shrink));
  // Killing the rx pool brings placement copies back and zero-copy
  // fragments go to zero.
  rep.hold("rx_pool_saves_host_copies",
           ledger_delta(no_pool, "host_copied_bytes") > 0.0 &&
               ledger_delta(no_pool, "fragments_zero_copy") < 0.0);
  // Unfusing the plan makes the application pay a separate store pass.
  rep.hold("unfuse_adds_app_store_pass",
           ledger_delta(unfuse, "app_store_bytes") > 0.0 &&
               ledger_delta(unfuse, "adus_presentation_fused") < 0.0);
  // The injected operator's ledger footprint is EXACTLY predictable.
  rep.hold("synthetic_copy_exact_bytes",
           ledger_delta(copy, "app_store_bytes") ==
               static_cast<double>(w.synthetic_copy_store_bytes()));

  rep.detail("ranked", ranked_json(report));
  rep.detail("saturation_steps", steps_json(report.baseline));
  rep.detail("flight_breakdown", report.flight_breakdown_json.empty()
                                     ? "{}"
                                     : report.flight_breakdown_json);

  std::printf("\nHOLDS: %s\n", rep.all_holds_ok() ? "all ok" : "FAILED");
  if (!rep.emit("DIAGNOSE_JSON")) return 1;
  return rep.all_holds_ok() ? 0 : 1;
}

int run_sessiond_plane(const ngp::bench::Args& args) {
  SessiondPlaneOptions opt =
      args.smoke ? SessiondPlaneOptions::smoke(args.seed) : SessiondPlaneOptions{};
  opt.seed = args.seed;
  if (args.threads > 0) opt.engine_workers = static_cast<unsigned>(args.threads);
  SessiondPlaneWorkload w(opt);

  SaturationOptions sopt;
  sopt.offered_start = 4;  // concurrent sessions
  sopt.offered_max = args.smoke ? 32 : 128;
  sopt.repeats = args.smoke ? 1 : 3;

  PerfReport report = diagnose(w, sopt);
  std::fputs(report.render_table().c_str(), stdout);

  bool hashes_ok = true, slo_ok = report.baseline_slo_failures.empty();
  for (const OperatorDelta& d : report.ranked) {
    hashes_ok = hashes_ok && d.output_hash_matches;
    slo_ok = slo_ok && d.slo_failures.empty();
  }

  ngp::bench::BenchReport rep("diagnose_sessiond_plane", args);
  rep.tracked("sat_mbps", report.baseline.sat_mbps, /*higher=*/true, 0.6);
  rep.metric("operators_attributed", report.ranked.size());
  rep.hold("attributes_five_operators", report.ranked.size() >= 5);
  rep.hold("output_hash_invariant", hashes_ok);
  rep.hold("slo_watchdogs_silent", slo_ok);
  rep.hold("all_adus_delivered",
           report.baseline.at_saturation.ledger.at("adus_delivered") ==
               static_cast<double>(opt.total_adus));
  rep.detail("ranked", ranked_json(report));
  rep.detail("saturation_steps", steps_json(report.baseline));

  std::printf("\nHOLDS: %s\n", rep.all_holds_ok() ? "all ok" : "FAILED");
  if (!rep.emit("DIAGNOSE_JSON")) return 1;
  return rep.all_holds_ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ngp::bench::Args args = ngp::bench::parse_args(&argc, argv);
  std::string workload = "datapath";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workload=", 11) == 0) workload = argv[i] + 11;
  }
  if (workload == "datapath") return run_datapath(args);
  if (workload == "sessiond_plane") return run_sessiond_plane(args);
  std::fprintf(stderr, "unknown --workload=%s (want datapath|sessiond_plane)\n",
               workload.c_str());
  return 2;
}
