// bench_trajectory — the tracked bench trajectory checker (DESIGN.md §14).
//
// The checked-in BENCH_*.json baselines are trajectory points: canonical
// ngp.bench/1 reports whose `tracked` declarations say which numbers a
// later run must not degrade and by how much. This tool has two modes:
//
//   --check [--dir=D]      validate every BENCH_*.json under D (default:
//                          cwd) against the schema — name/filename
//                          agreement, no smoke points, holds consistent.
//                          This is the hermetic CI gate: no benches run.
//   --current=F [--dir=D]  additionally diff the fresh report F (written
//                          by a bench's --json-out) against its matching
//                          baseline BENCH_<bench>.json, failing on any
//                          tracked metric degraded beyond the BASELINE's
//                          own tolerance, on schema drift, or on the
//                          current run's holds failing.
//
// Exit codes: 0 clean, 1 drift/regression/invalid, 2 usage.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "perf/json.h"
#include "perf/schema.h"

namespace {

namespace fs = std::filesystem;
using namespace ngp::perf;

/// BENCH_<stem>.json -> <stem>; empty when the name doesn't fit the shape.
std::string baseline_stem(const fs::path& p) {
  const std::string f = p.filename().string();
  constexpr const char* kPrefix = "BENCH_";
  constexpr const char* kSuffix = ".json";
  if (f.rfind(kPrefix, 0) != 0) return "";
  if (f.size() <= std::strlen(kPrefix) + std::strlen(kSuffix)) return "";
  if (f.substr(f.size() - std::strlen(kSuffix)) != kSuffix) return "";
  return f.substr(std::strlen(kPrefix),
                  f.size() - std::strlen(kPrefix) - std::strlen(kSuffix));
}

struct Baseline {
  fs::path path;
  std::string stem;
  json::Value doc;
};

int fail_usage() {
  std::fprintf(stderr,
               "usage: bench_trajectory --check [--dir=D] [--current=F]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string dir = ".";
  std::string current_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg.rfind("--dir=", 0) == 0) {
      dir = arg.substr(6);
    } else if (arg.rfind("--current=", 0) == 0) {
      current_path = arg.substr(10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return fail_usage();
    }
  }
  if (!check && current_path.empty()) return fail_usage();

  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::fprintf(stderr, "bench_trajectory: not a directory: %s\n", dir.c_str());
    return 1;
  }

  // ---- gather + validate every checked-in trajectory point.
  std::vector<Baseline> baselines;
  int failures = 0;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (baseline_stem(entry.path()).empty()) continue;
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());

  for (const fs::path& p : paths) {
    Baseline b;
    b.path = p;
    b.stem = baseline_stem(p);
    std::string err;
    if (!json::parse_file(p.string(), b.doc, &err)) {
      std::printf("FAIL  %s: %s\n", p.filename().string().c_str(), err.c_str());
      ++failures;
      continue;
    }
    ValidateOptions vopt;
    vopt.expect_bench = b.stem;
    vopt.forbid_smoke = true;
    const ValidationResult v = validate_report(b.doc, vopt);
    if (!v.ok()) {
      std::printf("FAIL  %s: schema drift\n", p.filename().string().c_str());
      for (const std::string& e : v.errors) std::printf("      - %s\n", e.c_str());
      ++failures;
      continue;
    }
    const std::size_t tracked = tracked_metrics(b.doc).size();
    std::printf("ok    %s  (bench=%s, %zu tracked metric%s)\n",
                p.filename().string().c_str(), b.stem.c_str(), tracked,
                tracked == 1 ? "" : "s");
    baselines.push_back(std::move(b));
  }
  if (paths.empty()) {
    std::printf("bench_trajectory: no BENCH_*.json under %s\n", dir.c_str());
    ++failures;
  }

  // ---- optional: diff a fresh run against its baseline.
  if (!current_path.empty()) {
    json::Value cur;
    std::string err;
    if (!json::parse_file(current_path, cur, &err)) {
      std::printf("FAIL  current %s: %s\n", current_path.c_str(), err.c_str());
      return 1;
    }
    const ValidationResult v = validate_report(cur);
    if (!v.ok()) {
      std::printf("FAIL  current %s: schema drift\n", current_path.c_str());
      for (const std::string& e : v.errors) std::printf("      - %s\n", e.c_str());
      return 1;
    }
    const std::string bench = cur.string_or("bench", "");
    const Baseline* base = nullptr;
    for (const Baseline& b : baselines) {
      if (b.stem == bench) base = &b;
    }
    if (base == nullptr) {
      std::printf("FAIL  current: no baseline BENCH_%s.json under %s\n",
                  bench.c_str(), dir.c_str());
      return 1;
    }
    const TrajectoryDiff d = compare_reports(base->doc, cur);
    std::printf("\ntrajectory %s vs %s:\n", bench.c_str(),
                base->path.filename().string().c_str());
    for (const MetricDelta& m : d.deltas) {
      if (m.missing) {
        std::printf("  MISSING     %-28s (tracked in baseline, absent now)\n",
                    m.metric.c_str());
        continue;
      }
      const char* verdict = m.regression     ? "REGRESSION "
                            : m.improvement ? "improvement"
                                            : "within tol ";
      std::printf("  %s %-28s %14.6g -> %-14.6g (%+.2f%%, tol %.0f%%)\n", verdict,
                  m.metric.c_str(), m.baseline, m.current, m.change_frac * 100.0,
                  m.tolerance_frac * 100.0);
    }
    for (const std::string& e : d.errors) std::printf("  ERROR %s\n", e.c_str());
    if (!d.current_holds_ok) std::printf("  FAIL: current run's holds failed\n");
    if (!d.ok()) ++failures;
  }

  if (failures > 0) {
    std::printf("\nbench_trajectory: %d failure%s\n", failures,
                failures == 1 ? "" : "s");
    return 1;
  }
  std::printf("\nbench_trajectory: all points valid\n");
  return 0;
}
