// bench_util.h — shared measurement helpers for the paper-reproduction
// benches. Each bench binary regenerates one table/figure (DESIGN.md §3):
// it runs its measurements, then prints a paper-style comparison block so
// the reader can line our numbers up with the 1990 ones.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>
#include <type_traits>

#include "util/stats.h"

namespace ngp::bench {

/// Command-line flags shared by the bench binaries:
///   --threads=N      engine worker count (0 = inline) for engine-aware benches
///   --seed=S         workload / fault-plan seed, so a sweep can be re-rolled
///   --smoke          reduced sweep for CI smoke runs
///   --trace-out=P    write the exported Perfetto trace JSON to path P
struct Args {
  int threads = 0;
  std::uint64_t seed = 1;
  bool smoke = false;
  std::string trace_out;
};

/// Parses and STRIPS the recognized flags out of argv, leaving everything
/// else in place (so the remainder can go straight to
/// benchmark::Initialize — call this first). Unknown flags pass through.
inline Args parse_args(int* argc, char** argv) {
  Args a;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      a.threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      a.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--smoke") {
      a.smoke = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      a.trace_out = arg.substr(12);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return a;
}

/// One-line machine-readable result record: `TAG {json}` on stdout, the
/// format the plotting/driver scripts grep for.
inline void emit_json(const std::string& tag, const std::string& json) {
  std::printf("\n%s %s\n", tag.c_str(), json.c_str());
}

/// Tiny deterministic JSON object builder for the `TAG {json}` records, so
/// every bench renders numbers the same way (doubles via %.10g — locale
/// independent, round-trippable) instead of hand-rolling snprintf formats.
class JsonWriter {
 public:
  JsonWriter& field(std::string_view name, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    key(name);
    body_ += buf;
    return *this;
  }
  JsonWriter& field(std::string_view name, bool v) {
    key(name);
    body_ += v ? "true" : "false";
    return *this;
  }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& field(std::string_view name, T v) {
    char buf[32];
    if constexpr (std::is_signed_v<T>) {
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
    }
    key(name);
    body_ += buf;
    return *this;
  }
  JsonWriter& field(std::string_view name, std::string_view v) {
    key(name);
    body_ += '"';
    for (char c : v) {
      if (c == '"' || c == '\\') {
        body_ += '\\';
        body_ += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        body_ += buf;
      } else {
        body_ += c;
      }
    }
    body_ += '"';
    return *this;
  }
  JsonWriter& field(std::string_view name, const char* v) {
    return field(name, std::string_view(v));
  }
  /// Splices pre-rendered JSON (a nested object/array) under `name`.
  JsonWriter& raw(std::string_view name, std::string_view json) {
    key(name);
    body_ += json;
    return *this;
  }
  std::string str() const { return "{" + body_ + "}"; }

 private:
  void key(std::string_view name) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    body_ += name;
    body_ += "\":";
  }
  std::string body_;
};

/// Structural well-formedness check for exported JSON (string-aware brace /
/// bracket balance). Not a full parser — it is the bench-side self-check
/// that an exported trace will load at all.
inline bool json_well_formed(std::string_view s) {
  std::string stack;
  bool in_str = false, esc = false;
  for (char c : s) {
    if (in_str) {
      if (esc) {
        esc = false;
      } else if (c == '\\') {
        esc = true;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_str = true; break;
      case '{': case '[': stack += c; break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return stack.empty() && !in_str;
}

/// Wall-clock seconds for one invocation of `fn`.
inline double time_once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Measures `fn` (which processes `bytes_per_iter` bytes per call) and
/// returns throughput in Mb/s. Runs warmups, then batches until the
/// measurement window exceeds ~100ms for stability.
inline double measure_mbps(std::size_t bytes_per_iter, const std::function<void()>& fn,
                           int warmup = 3) {
  for (int i = 0; i < warmup; ++i) fn();
  int iters = 1;
  double elapsed = 0;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    elapsed = std::chrono::duration<double>(t1 - t0).count();
    if (elapsed > 0.1) break;
    iters *= 4;
  }
  return megabits_per_second(bytes_per_iter * static_cast<std::size_t>(iters), elapsed);
}

/// Prints one "name: X Mb/s (ratio vs baseline)" row.
inline void print_row(const std::string& name, double mbps, double baseline_mbps = 0) {
  if (baseline_mbps > 0) {
    std::printf("  %-36s %10.1f Mb/s   (%.2fx vs baseline)\n", name.c_str(), mbps,
                mbps / baseline_mbps);
  } else {
    std::printf("  %-36s %10.1f Mb/s\n", name.c_str(), mbps);
  }
}

/// Prints a section header.
inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints the paper's reference numbers for side-by-side comparison.
inline void print_paper_note(const std::string& note) {
  std::printf("  paper (1990): %s\n", note.c_str());
}

}  // namespace ngp::bench
