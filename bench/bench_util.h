// bench_util.h — shared measurement helpers for the paper-reproduction
// benches. Each bench binary regenerates one table/figure (DESIGN.md §3):
// it runs its measurements, then prints a paper-style comparison block so
// the reader can line our numbers up with the 1990 ones.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "util/stats.h"

namespace ngp::bench {

/// Command-line flags shared by the bench binaries:
///   --threads=N  engine worker count (0 = inline) for engine-aware benches
///   --seed=S     workload / fault-plan seed, so a sweep can be re-rolled
struct Args {
  int threads = 0;
  std::uint64_t seed = 1;
};

/// Parses and STRIPS the recognized flags out of argv, leaving everything
/// else in place (so the remainder can go straight to
/// benchmark::Initialize — call this first). Unknown flags pass through.
inline Args parse_args(int* argc, char** argv) {
  Args a;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      a.threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      a.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return a;
}

/// One-line machine-readable result record: `TAG {json}` on stdout, the
/// format the plotting/driver scripts grep for.
inline void emit_json(const std::string& tag, const std::string& json) {
  std::printf("\n%s %s\n", tag.c_str(), json.c_str());
}

/// Wall-clock seconds for one invocation of `fn`.
inline double time_once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Measures `fn` (which processes `bytes_per_iter` bytes per call) and
/// returns throughput in Mb/s. Runs warmups, then batches until the
/// measurement window exceeds ~100ms for stability.
inline double measure_mbps(std::size_t bytes_per_iter, const std::function<void()>& fn,
                           int warmup = 3) {
  for (int i = 0; i < warmup; ++i) fn();
  int iters = 1;
  double elapsed = 0;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    elapsed = std::chrono::duration<double>(t1 - t0).count();
    if (elapsed > 0.1) break;
    iters *= 4;
  }
  return megabits_per_second(bytes_per_iter * static_cast<std::size_t>(iters), elapsed);
}

/// Prints one "name: X Mb/s (ratio vs baseline)" row.
inline void print_row(const std::string& name, double mbps, double baseline_mbps = 0) {
  if (baseline_mbps > 0) {
    std::printf("  %-36s %10.1f Mb/s   (%.2fx vs baseline)\n", name.c_str(), mbps,
                mbps / baseline_mbps);
  } else {
    std::printf("  %-36s %10.1f Mb/s\n", name.c_str(), mbps);
  }
}

/// Prints a section header.
inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints the paper's reference numbers for side-by-side comparison.
inline void print_paper_note(const std::string& note) {
  std::printf("  paper (1990): %s\n", note.c_str());
}

}  // namespace ngp::bench
