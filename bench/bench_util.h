// bench_util.h — shared measurement helpers for the paper-reproduction
// benches. Each bench binary regenerates one table/figure (DESIGN.md §3):
// it runs its measurements, then prints a paper-style comparison block so
// the reader can line our numbers up with the 1990 ones.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/stats.h"

namespace ngp::bench {

/// Command-line flags shared by the bench binaries:
///   --threads=N      engine worker count (0 = inline) for engine-aware benches
///   --seed=S         workload / fault-plan seed, so a sweep can be re-rolled
///   --smoke          reduced sweep for CI smoke runs
///   --trace-out=P    write the exported Perfetto trace JSON to path P
///   --json-out=P     write the bench's canonical BenchReport JSON to path P
///                    (stdout emission is unchanged — the file is for
///                    drivers like bench_trajectory, no scraping required)
struct Args {
  int threads = 0;
  std::uint64_t seed = 1;
  bool smoke = false;
  std::string trace_out;
  std::string json_out;
};

/// Parses and STRIPS the recognized flags out of argv, leaving everything
/// else in place (so the remainder can go straight to
/// benchmark::Initialize — call this first). Unknown flags pass through.
/// --json-out accepts both `--json-out=path` and `--json-out path`.
inline Args parse_args(int* argc, char** argv) {
  Args a;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      a.threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      a.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--smoke") {
      a.smoke = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      a.trace_out = arg.substr(12);
    } else if (arg.rfind("--json-out=", 0) == 0) {
      a.json_out = arg.substr(11);
    } else if (arg == "--json-out" && i + 1 < *argc) {
      a.json_out = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return a;
}

/// One-line machine-readable result record: `TAG {json}` on stdout, the
/// format the plotting/driver scripts grep for.
inline void emit_json(const std::string& tag, const std::string& json) {
  std::printf("\n%s %s\n", tag.c_str(), json.c_str());
}

/// Tiny deterministic JSON object builder for the `TAG {json}` records, so
/// every bench renders numbers the same way (doubles via %.10g — locale
/// independent, round-trippable) instead of hand-rolling snprintf formats.
class JsonWriter {
 public:
  JsonWriter& field(std::string_view name, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    key(name);
    body_ += buf;
    return *this;
  }
  JsonWriter& field(std::string_view name, bool v) {
    key(name);
    body_ += v ? "true" : "false";
    return *this;
  }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& field(std::string_view name, T v) {
    char buf[32];
    if constexpr (std::is_signed_v<T>) {
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
    }
    key(name);
    body_ += buf;
    return *this;
  }
  JsonWriter& field(std::string_view name, std::string_view v) {
    key(name);
    body_ += '"';
    for (char c : v) {
      if (c == '"' || c == '\\') {
        body_ += '\\';
        body_ += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        body_ += buf;
      } else {
        body_ += c;
      }
    }
    body_ += '"';
    return *this;
  }
  JsonWriter& field(std::string_view name, const char* v) {
    return field(name, std::string_view(v));
  }
  /// Splices pre-rendered JSON (a nested object/array) under `name`.
  JsonWriter& raw(std::string_view name, std::string_view json) {
    key(name);
    body_ += json;
    return *this;
  }
  std::string str() const { return "{" + body_ + "}"; }

 private:
  void key(std::string_view name) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    body_ += name;
    body_ += "\":";
  }
  std::string body_;
};

/// Structural well-formedness check for exported JSON (string-aware brace /
/// bracket balance). Not a full parser — it is the bench-side self-check
/// that an exported trace will load at all.
inline bool json_well_formed(std::string_view s) {
  std::string stack;
  bool in_str = false, esc = false;
  for (char c : s) {
    if (in_str) {
      if (esc) {
        esc = false;
      } else if (c == '\\') {
        esc = true;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_str = true; break;
      case '{': case '[': stack += c; break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return stack.empty() && !in_str;
}

/// String-aware structural re-indenter for a one-line JSON document: the
/// JsonWriter output, made diffable for checked-in baselines. Purely
/// lexical — input must already be well-formed (see json_well_formed).
inline std::string pretty_json(std::string_view s, int indent_width = 4) {
  std::string out;
  out.reserve(s.size() * 2);
  int depth = 0;
  bool in_str = false, esc = false;
  const auto newline = [&](int d) {
    out += '\n';
    out.append(static_cast<std::size_t>(d * indent_width), ' ');
  };
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_str) {
      out += c;
      if (esc) {
        esc = false;
      } else if (c == '\\') {
        esc = true;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_str = true;
        out += c;
        break;
      case '{':
      case '[': {
        out += c;
        // Keep empty containers on one line.
        if (i + 1 < s.size() && s[i + 1] == (c == '{' ? '}' : ']')) {
          out += s[++i];
        } else {
          newline(++depth);
        }
        break;
      }
      case '}':
      case ']':
        newline(--depth);
        out += c;
        break;
      case ',':
        out += c;
        newline(depth);
        break;
      case ':':
        out += ": ";
        break;
      default:
        out += c;
        break;
    }
  }
  out += '\n';
  return out;
}

/// The canonical bench report (DESIGN.md §14): ONE schema every bench
/// renders its result into, so the checked-in BENCH_*.json baselines form
/// a machine-diffable trajectory instead of a zoo of ad-hoc shapes.
///
///   {"schema":"ngp.bench/1","bench":"<name>","seed":S,"smoke":B,
///    "metrics":{<flat scalar surface>},
///    "tracked":[{"metric":M,"higher_is_better":B,"tolerance_frac":F},...],
///    "holds":[{"name":N,"ok":B},...],"all_holds_ok":B,
///    "detail":{<free-form nested payload>}}
///
/// `metrics` is the comparison surface: flat name -> number. `tracked`
/// declares which of those numbers the trajectory tool regression-checks
/// and with what tolerance (the BASELINE owns its tolerance — the check
/// needs no side-channel config). `holds` are the bench's own acceptance
/// self-checks; `detail` carries the legacy nested blocks unvalidated.
/// Validation/diffing lives in src/perf/schema.h (bench_trajectory).
class BenchReport {
 public:
  /// `bench` must match the baseline filename stem: BENCH_<bench>.json.
  BenchReport(std::string bench, const Args& args)
      : bench_(std::move(bench)), seed_(args.seed), smoke_(args.smoke),
        json_out_(args.json_out) {}

  static constexpr std::string_view kSchema = "ngp.bench/1";

  /// Adds one flat scalar metric (the trajectory comparison surface).
  BenchReport& metric(std::string_view name, double v) {
    metrics_.field(name, v);
    return *this;
  }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  BenchReport& metric(std::string_view name, T v) {
    metrics_.field(name, v);
    return *this;
  }

  /// Adds a metric AND declares it regression-tracked: bench_trajectory
  /// fails when a later run degrades it beyond tolerance_frac (relative).
  template <typename T>
  BenchReport& tracked(std::string_view name, T v, bool higher_is_better,
                       double tolerance_frac) {
    metric(name, v);
    JsonWriter t;
    t.field("metric", name)
        .field("higher_is_better", higher_is_better)
        .field("tolerance_frac", tolerance_frac);
    if (!tracked_.empty()) tracked_ += ',';
    tracked_ += t.str();
    return *this;
  }

  /// Records one acceptance self-check. Also prints the verdict row the
  /// human-readable summaries use.
  BenchReport& hold(std::string_view name, bool ok) {
    JsonWriter h;
    h.field("name", name).field("ok", ok);
    if (!holds_.empty()) holds_ += ',';
    holds_ += h.str();
    all_holds_ok_ = all_holds_ok_ && ok;
    return *this;
  }

  /// Splices a pre-rendered JSON object/array under detail.<name>
  /// (the bench's legacy nested payload, schema-exempt).
  BenchReport& detail(std::string_view name, std::string_view json) {
    detail_.raw(name, json);
    return *this;
  }

  bool all_holds_ok() const noexcept { return all_holds_ok_; }

  std::string to_json() const {
    JsonWriter w;
    w.field("schema", kSchema)
        .field("bench", bench_)
        .field("seed", seed_)
        .field("smoke", smoke_)
        .raw("metrics", metrics_.str())
        .raw("tracked", "[" + tracked_ + "]")
        .raw("holds", "[" + holds_ + "]")
        .field("all_holds_ok", all_holds_ok_)
        .raw("detail", detail_.str());
    return w.str();
  }

  /// Emits `TAG {json}` on stdout (the grep-able line every bench keeps)
  /// and, when --json-out was given, writes the pretty-printed report to
  /// that file. Returns false on a malformed render or an unwritable path
  /// — the bench should exit non-zero.
  bool emit(const std::string& tag = "BENCH_REPORT_JSON") const {
    const std::string json = to_json();
    if (!json_well_formed(json)) {
      std::fprintf(stderr, "BenchReport: malformed JSON render for '%s'\n",
                   bench_.c_str());
      return false;
    }
    emit_json(tag, json);
    if (!json_out_.empty()) {
      std::FILE* f = std::fopen(json_out_.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "BenchReport: cannot write %s\n", json_out_.c_str());
        return false;
      }
      const std::string pretty = pretty_json(json);
      const bool ok =
          std::fwrite(pretty.data(), 1, pretty.size(), f) == pretty.size();
      std::fclose(f);
      if (!ok) {
        std::fprintf(stderr, "BenchReport: short write to %s\n", json_out_.c_str());
        return false;
      }
    }
    return true;
  }

 private:
  std::string bench_;
  std::uint64_t seed_;
  bool smoke_;
  std::string json_out_;
  JsonWriter metrics_;
  JsonWriter detail_;
  std::string tracked_;  // comma-joined tracked descriptors
  std::string holds_;    // comma-joined hold objects
  bool all_holds_ok_ = true;
};

/// Wall-clock seconds for one invocation of `fn`.
inline double time_once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Measures `fn` (which processes `bytes_per_iter` bytes per call) and
/// returns throughput in Mb/s. Runs warmups, then batches until the
/// measurement window exceeds ~100ms for stability.
inline double measure_mbps(std::size_t bytes_per_iter, const std::function<void()>& fn,
                           int warmup = 3) {
  for (int i = 0; i < warmup; ++i) fn();
  int iters = 1;
  double elapsed = 0;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    elapsed = std::chrono::duration<double>(t1 - t0).count();
    if (elapsed > 0.1) break;
    iters *= 4;
  }
  return megabits_per_second(bytes_per_iter * static_cast<std::size_t>(iters), elapsed);
}

/// Prints one "name: X Mb/s (ratio vs baseline)" row.
inline void print_row(const std::string& name, double mbps, double baseline_mbps = 0) {
  if (baseline_mbps > 0) {
    std::printf("  %-36s %10.1f Mb/s   (%.2fx vs baseline)\n", name.c_str(), mbps,
                mbps / baseline_mbps);
  } else {
    std::printf("  %-36s %10.1f Mb/s\n", name.c_str(), mbps);
  }
}

/// Prints a section header.
inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Prints the paper's reference numbers for side-by-side comparison.
inline void print_paper_note(const std::string& note) {
  std::printf("  paper (1990): %s\n", note.c_str());
}

}  // namespace ngp::bench
