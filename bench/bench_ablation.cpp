// bench_ablation — design-choice ablations called out in DESIGN.md:
//
//   A1: checksum algorithm choice (Internet vs Fletcher vs Adler vs CRC)
//       — the per-ADU integrity knob in SessionConfig.
//   A2: loop engineering: byte-at-a-time vs word vs unrolled (the
//       "hand-coded unrolled loops" qualifier in Table 1).
//   A3: compiled vs interpreted stacks (§8): template-fused pipeline vs
//       runtime-dispatched per-layer passes.
//   A4: ADU size: per-fragment header overhead vs loss-amplification —
//       §5's "reasonably bounded" trade-off, measured end to end.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "alf/receiver.h"
#include "alf/sender.h"
#include "checksum/checksum.h"
#include "ilp/engine.h"
#include "ilp/kernels.h"
#include "ilp/runtime.h"
#include "netsim/net_path.h"
#include "util/rng.h"

namespace {

using namespace ngp;

constexpr std::size_t kBuf = 64 * 1024;

ByteBuffer make_buffer(std::size_t n) {
  ByteBuffer b(n);
  Rng rng(0xAB1A);
  rng.fill(b.span());
  return b;
}

void ablation_checksums() {
  using ngp::bench::measure_mbps;
  ngp::bench::print_header("A1: checksum algorithm throughput (per-ADU integrity knob)");
  ByteBuffer src = make_buffer(kBuf);
  for (ChecksumKind kind : {ChecksumKind::kInternet, ChecksumKind::kFletcher32,
                            ChecksumKind::kAdler32, ChecksumKind::kCrc32}) {
    volatile std::uint32_t sink = 0;
    const double mbps =
        measure_mbps(kBuf, [&] { sink = compute_checksum(kind, src.span()); });
    (void)sink;
    ngp::bench::print_row(std::string(checksum_kind_name(kind)), mbps);
  }
}

void ablation_unrolling() {
  using ngp::bench::measure_mbps;
  ngp::bench::print_header("A2: loop engineering (Table 1's 'hand-coded unrolled')");
  ByteBuffer src = make_buffer(kBuf), dst(kBuf);
  volatile std::uint16_t sink = 0;
  ngp::bench::print_row("checksum byte-at-a-time", measure_mbps(kBuf, [&] {
                          sink = internet_checksum_bytewise(src.span());
                        }));
  ngp::bench::print_row("checksum 16-bit words", measure_mbps(kBuf, [&] {
                          sink = internet_checksum(src.span());
                        }));
  ngp::bench::print_row("checksum 64-bit unrolled", measure_mbps(kBuf, [&] {
                          sink = internet_checksum_unrolled(src.span());
                        }));
  (void)sink;
  ngp::bench::print_row("copy byte-at-a-time",
                        measure_mbps(kBuf, [&] { copy_bytewise(src.span(), dst.span()); }));
  ngp::bench::print_row("copy 64-bit unrolled",
                        measure_mbps(kBuf, [&] { copy_unrolled(src.span(), dst.span()); }));
  ngp::bench::print_row("copy memcpy",
                        measure_mbps(kBuf, [&] { copy_memcpy(src.span(), dst.span()); }));
}

void ablation_compiled_vs_interpreted() {
  using ngp::bench::measure_mbps;
  ngp::bench::print_header(
      "A3 (paper §8): 'compiled' (fused templates) vs 'interpreted' (runtime stack)");
  // Memory-bound working set (beyond LLC): the compiled/fused advantage is
  // structural — one traversal instead of one per layer. At cache-resident
  // sizes both run from L2 and the comparison is dominated by noise.
  const std::size_t big = 32 << 20;
  ByteBuffer src = make_buffer(big), dst(big);
  ChaChaKey key{};

  const double compiled = measure_mbps(big, [&] {
    ChecksumStage ck;
    Byteswap32Stage bs;
    AppSumStage sum;
    ilp_fused(src.span(), dst.span(), ck, bs, sum);
    benchmark::DoNotOptimize(ck.result());
  });

  RuntimePipeline pipe;
  pipe.push(make_runtime_checksum());
  pipe.push(make_runtime_byteswap32());
  pipe.push(make_runtime_app_sum());
  const double interpreted = measure_mbps(big, [&] {
    pipe.run(src.span(), dst.span());
    benchmark::DoNotOptimize(pipe.stage(0).result());
  });

  ngp::bench::print_row("compiled (ilp_fused)", compiled);
  ngp::bench::print_row("interpreted (RuntimePipeline)", interpreted, compiled);
  std::printf("  shape check: compiled beats interpreted when memory-bound -> %s "
              "(%.2fx)\n",
              compiled > interpreted ? "HOLDS" : "FAILS", compiled / interpreted);
}

void ablation_adu_size() {
  ngp::bench::print_header("A4 (paper §5): ADU size trade-off, end to end at 2% loss");
  std::printf("  %-10s | %10s | %10s | %12s | %14s\n", "ADU bytes", "time(s)",
              "Mb/s", "ADU rtx", "hdr overhead");
  const std::size_t total = 1 << 20;

  for (std::size_t adu : {500u, 1000u, 2000u, 4000u, 8000u, 16000u, 64000u}) {
    EventLoop loop;
    LinkConfig cfg;
    cfg.bandwidth_bps = 100e6;
    cfg.propagation_delay = 2 * kMillisecond;
    cfg.queue_limit = 1 << 16;
    cfg.seed = adu;
    DuplexChannel ch(loop, cfg);
    ch.forward.set_loss_rate(0.02);
    LinkPath data(ch.forward), fb_tx(ch.reverse), fb_rx(ch.reverse);

    alf::SessionConfig scfg;
    scfg.nack_delay = 10 * kMillisecond;
    scfg.nack_retry = 25 * kMillisecond;
    alf::AlfSender sender(loop, data, fb_rx, scfg);
    alf::AlfReceiver receiver(loop, data, fb_tx, scfg);
    std::uint64_t delivered = 0;
    receiver.set_on_adu([&](Adu&& a) { delivered += a.payload.size(); });

    ByteBuffer file(total);
    Rng rng(9);
    rng.fill(file.span());
    for (std::size_t off = 0; off < total; off += adu) {
      const std::size_t len = std::min(adu, total - off);
      if (!sender
               .send_adu(FileRegionName{off, len}.to_name(), file.span().subspan(off, len))
               .ok()) {
        std::abort();
      }
    }
    sender.finish();
    loop.run();

    const double secs = to_seconds(loop.now());
    const double hdr_frac =
        static_cast<double>(sender.stats().fragments_sent) *
        alf::DataFragment::kHeaderSize /
        static_cast<double>(sender.stats().payload_bytes_sent);
    std::printf("  %-10zu | %10.3f | %10.1f | %12zu | %13.1f%%\n", adu, secs,
                megabits_per_second(delivered, secs),
                static_cast<std::size_t>(sender.stats().adus_retransmitted),
                100.0 * hdr_frac);
  }
  std::printf("  shape: tiny ADUs pay header overhead; huge ADUs amplify loss\n"
              "  into retransmitted volume — the optimum is in between\n"
              "  (\"ADU lengths should be reasonably bounded\", §5).\n");
}

void ablation_fec() {
  ngp::bench::print_header(
      "A5 (paper fn.10): ADU-level FEC for no-retransmit sessions, 3% loss");
  std::printf("  %-8s | %12s | %12s | %14s\n", "fec_k", "ADUs delivered",
              "FEC repairs", "parity overhead");
  const std::size_t kAdus = 400, kAduSize = 6000;

  for (int fec_k : {0, 2, 4, 8}) {
    EventLoop loop;
    LinkConfig cfg;
    cfg.bandwidth_bps = 100e6;
    cfg.propagation_delay = 2 * kMillisecond;
    cfg.queue_limit = 1 << 16;
    cfg.seed = 77 + static_cast<std::uint64_t>(fec_k);
    DuplexChannel ch(loop, cfg);
    ch.forward.set_loss_rate(0.03);
    LinkPath data(ch.forward), fb_tx(ch.reverse), fb_rx(ch.reverse);

    alf::SessionConfig scfg;
    scfg.retransmit = alf::RetransmitPolicy::kNone;  // real time: FEC or bust
    scfg.fec_k = static_cast<std::uint8_t>(fec_k);
    alf::AlfSender sender(loop, data, fb_rx, scfg);
    alf::AlfReceiver receiver(loop, data, fb_tx, scfg);
    std::uint64_t delivered = 0;
    receiver.set_on_adu([&](Adu&&) { ++delivered; });

    ByteBuffer payload(kAduSize);
    Rng rng(5);
    for (std::size_t i = 0; i < kAdus; ++i) {
      rng.fill(payload.span());
      if (!sender.send_adu(generic_name(i), payload.span()).ok()) std::abort();
    }
    sender.finish();
    loop.run();

    const double overhead =
        sender.stats().fragments_sent == 0
            ? 0.0
            : 100.0 * static_cast<double>(sender.stats().fec_parity_sent) /
                  static_cast<double>(sender.stats().fragments_sent);
    std::printf("  %-8d | %9.1f%%    | %12llu | %13.1f%%\n", fec_k,
                100.0 * static_cast<double>(delivered) / kAdus,
                static_cast<unsigned long long>(
                    receiver.stats().fragments_fec_reconstructed),
                overhead);
  }
  std::printf("  shape: smaller k = more parity overhead but higher survival\n"
              "  without any retransmission round trip (footnote 10's FEC).\n");
}

}  // namespace

int main() {
  ablation_checksums();
  ablation_unrolling();
  ablation_compiled_vs_interpreted();
  ablation_adu_size();
  ablation_fec();
  return 0;
}
