// bench_ilp_fusion — reproduces the paper's two ILP experiments (§4):
//
//   E1: copy 130 Mb/s and checksum 115 Mb/s run separately compose to an
//       effective ~60 Mb/s; a hand-coded loop doing both at once ran at
//       90 Mb/s (~1.5x). "The effect would be much more beneficial if
//       several of the necessary manipulation steps were combined."
//       -> series 1: N-stage pipelines (copy, +checksum, +encrypt,
//          +byteswap), layered vs integrated vs runtime-dispatched.
//
//   E4: ASN.1 conversion at 28 Mb/s; conversion + checksum fused only
//       dropped it to 24 Mb/s — once a heavy stage is in the loop, an
//       extra cheap stage is nearly free.
//       -> series 2: BER encode alone, BER encode + separate checksum
//          pass, BER encode with the checksum fused into the encode loop.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.h"
#include "checksum/checksum.h"
#include "checksum/internet.h"
#include "crypto/chacha20.h"
#include "ilp/engine.h"
#include "ilp/kernels.h"
#include "ilp/pipeline.h"
#include "ilp/runtime.h"
#include "obs/metrics.h"
#include "presentation/ber.h"
#include "simd/dispatch.h"
#include "util/rng.h"

namespace {

using namespace ngp;

constexpr std::size_t kBuf = 64 * 1024;

ByteBuffer make_buffer(std::size_t n) {
  ByteBuffer b(n);
  Rng rng(0xF00D);
  rng.fill(b.span());
  return b;
}

// ---- google-benchmark: layered vs fused at each pipeline depth ----------------

template <int Depth, bool Fused>
void run_pipeline(ConstBytes src, MutableBytes dst, const ChaChaKey& key) {
  ChecksumStage ck;
  EncryptStage enc(key, 0);
  Byteswap32Stage bs;
  if constexpr (Depth == 1) {
    if constexpr (Fused) {
      ilp_fused(src, dst);
    } else {
      ilp_layered(src, dst);
    }
  } else if constexpr (Depth == 2) {
    if constexpr (Fused) {
      ilp_fused(src, dst, ck);
    } else {
      ilp_layered(src, dst, ck);
    }
  } else if constexpr (Depth == 3) {
    if constexpr (Fused) {
      ilp_fused(src, dst, ck, enc);
    } else {
      ilp_layered(src, dst, ck, enc);
    }
  } else {
    if constexpr (Fused) {
      ilp_fused(src, dst, ck, enc, bs);
    } else {
      ilp_layered(src, dst, ck, enc, bs);
    }
  }
  benchmark::DoNotOptimize(dst.data());
}

template <int Depth, bool Fused>
void BM_Pipeline(benchmark::State& state) {
  ByteBuffer src = make_buffer(kBuf), dst(kBuf);
  ChaChaKey key{};
  for (auto _ : state) run_pipeline<Depth, Fused>(src.span(), dst.span(), key);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBuf));
}

void register_pipeline_benches() {
  benchmark::RegisterBenchmark("layered/copy", BM_Pipeline<1, false>);
  benchmark::RegisterBenchmark("fused/copy", BM_Pipeline<1, true>);
  benchmark::RegisterBenchmark("layered/copy+cksum", BM_Pipeline<2, false>);
  benchmark::RegisterBenchmark("fused/copy+cksum", BM_Pipeline<2, true>);
  benchmark::RegisterBenchmark("layered/copy+cksum+encrypt", BM_Pipeline<3, false>);
  benchmark::RegisterBenchmark("fused/copy+cksum+encrypt", BM_Pipeline<3, true>);
  benchmark::RegisterBenchmark("layered/copy+cksum+encrypt+swap",
                               BM_Pipeline<4, false>);
  benchmark::RegisterBenchmark("fused/copy+cksum+encrypt+swap", BM_Pipeline<4, true>);
}

// ---- Paper-style summaries ------------------------------------------------------

void print_e1() {
  using ngp::bench::measure_mbps;
  using ngp::bench::print_header;
  using ngp::bench::print_row;

  ByteBuffer src = make_buffer(kBuf), dst(kBuf);
  ChaChaKey key{};

  const double copy_alone =
      measure_mbps(kBuf, [&] { copy_unrolled(src.span(), dst.span()); });
  volatile std::uint16_t sink = 0;
  const double cksum_alone =
      measure_mbps(kBuf, [&] { sink = internet_checksum_unrolled(src.span()); });
  (void)sink;
  const double separate = measure_mbps(kBuf, [&] {
    ChecksumStage ck;
    ilp_layered(src.span(), dst.span(), ck);
    benchmark::DoNotOptimize(ck.result());
  });
  const double fused = measure_mbps(kBuf, [&] {
    ChecksumStage ck;
    ilp_fused(src.span(), dst.span(), ck);
    benchmark::DoNotOptimize(ck.result());
  });

  print_header("E1 (paper §4): copy + checksum, separate vs integrated");
  print_row("copy alone", copy_alone);
  print_row("checksum alone", cksum_alone);
  print_row("copy then checksum (layered)", separate);
  print_row("copy+checksum (one fused loop)", fused, separate);
  const double predicted =
      1.0 / (1.0 / copy_alone + 1.0 / cksum_alone);  // serial composition
  std::printf("  serial-composition prediction: %.1f Mb/s (paper: 130,115 -> ~60)\n",
              predicted);
  std::printf("  paper: separate ~60 Mb/s, fused 90 Mb/s (1.5x). ours: %.2fx\n",
              fused / separate);
  std::printf("  shape check: fused >= separate -> %s\n",
              fused >= separate * 0.98 ? "HOLDS" : "FAILS");

  // Deeper MEMORY-BOUND pipelines: the fusion gain grows with stage count
  // because each extra layered stage is another full traversal of the
  // buffer, while the fused loop still reads each word once (§4's "the
  // effect would be much more beneficial if several of the necessary
  // manipulation steps were combined").
  print_header("E1b: fusion gain vs pipeline depth (memory-bound stages)");
  struct RowResult {
    const char* name;
    double layered, fused;
  };
  std::vector<RowResult> rows;
  // Use a buffer larger than L2 so layered passes genuinely re-read memory.
  const std::size_t big = 32 << 20;
  ByteBuffer bsrc = make_buffer(big), bdst(big);
  {
    double l = measure_mbps(big, [&] {
      ChecksumStage ck;
      ilp_layered(bsrc.span(), bdst.span(), ck);
    });
    double f = measure_mbps(big, [&] {
      ChecksumStage ck;
      ilp_fused(bsrc.span(), bdst.span(), ck);
    });
    rows.push_back({"2 stages (copy,cksum)", l, f});
  }
  {
    double l = measure_mbps(big, [&] {
      ChecksumStage ck;
      Byteswap32Stage bs;
      ilp_layered(bsrc.span(), bdst.span(), ck, bs);
    });
    double f = measure_mbps(big, [&] {
      ChecksumStage ck;
      Byteswap32Stage bs;
      ilp_fused(bsrc.span(), bdst.span(), ck, bs);
    });
    rows.push_back({"3 stages (+byteswap)", l, f});
  }
  {
    double l = measure_mbps(big, [&] {
      ChecksumStage ck;
      Byteswap32Stage bs;
      AppSumStage sum;
      ilp_layered(bsrc.span(), bdst.span(), ck, bs, sum);
    });
    double f = measure_mbps(big, [&] {
      ChecksumStage ck;
      Byteswap32Stage bs;
      AppSumStage sum;
      ilp_fused(bsrc.span(), bdst.span(), ck, bs, sum);
    });
    rows.push_back({"4 stages (+app read)", l, f});
  }
  double depth4_gain = 0;
  for (const auto& r : rows) {
    std::printf("  %-28s layered %8.1f  fused %8.1f  gain %.2fx\n", r.name,
                r.layered, r.fused, r.fused / r.layered);
    depth4_gain = r.fused / r.layered;
  }
  std::printf("  shape check: gain at depth 4 exceeds depth 2 -> %s\n",
              depth4_gain > rows.front().fused / rows.front().layered ? "HOLDS"
                                                                      : "FAILS");

  // The compute-bound counter-example (the paper's own caveat: "ILP is
  // just an engineering principle, to be applied only when useful").
  print_header("E1c: compute-bound stage (ChaCha20) — fusion does not help");
  {
    double l = measure_mbps(kBuf, [&] {
      ChecksumStage ck;
      EncryptStage e(key, 0);
      ilp_layered(src.span(), dst.span(), ck, e);
    });
    double f = measure_mbps(kBuf, [&] {
      ChecksumStage ck;
      EncryptStage e(key, 0);
      ilp_fused(src.span(), dst.span(), ck, e);
    });
    std::printf("  copy+cksum+encrypt: layered %8.1f  fused %8.1f  gain %.2fx\n", l,
                f, f / l);
    std::printf("  cipher arithmetic, not memory traffic, is the bottleneck here;\n"
                "  fusing buys nothing — matching the paper's 'only when useful'.\n");
  }
}

void print_e4() {
  using ngp::bench::measure_mbps;
  using ngp::bench::print_header;
  using ngp::bench::print_row;

  // The paper's §4 integer-array workload.
  std::vector<std::int32_t> values(16384);
  Rng rng(0xA5);
  for (auto& v : values) v = static_cast<std::int32_t>(rng.next());
  const std::size_t bytes = values.size() * 4;

  ByteBuffer out;
  const double convert_alone = measure_mbps(bytes, [&] {
    ber::encode_int_array_into(values, out);
    benchmark::DoNotOptimize(out.data());
  });
  volatile std::uint16_t sink = 0;
  const double convert_then_cksum = measure_mbps(bytes, [&] {
    ber::encode_int_array_into(values, out);
    sink = internet_checksum_unrolled(out.span());
  });
  std::uint16_t fused_ck = 0;
  const double convert_fused_cksum = measure_mbps(bytes, [&] {
    out = ber::encode_int_array_checksummed(values, fused_ck);
    benchmark::DoNotOptimize(fused_ck);
  });
  (void)sink;

  print_header("E4 (paper §4): ASN.1 conversion with checksum fused in");
  print_row("BER convert alone", convert_alone);
  print_row("convert + separate checksum pass", convert_then_cksum, convert_alone);
  print_row("convert with fused checksum", convert_fused_cksum, convert_alone);
  std::printf("  paper: 28 Mb/s alone -> 24 Mb/s fused = 86%% retained; the claim\n"
              "  is that once conversion dominates, the checksum is nearly free.\n");
  std::printf("  ours: %.0f%% retained fused; %.0f%% retained with a separate pass\n",
              100.0 * convert_fused_cksum / convert_alone,
              100.0 * convert_then_cksum / convert_alone);
  const bool nearly_free = convert_fused_cksum >= 0.70 * convert_alone &&
                           convert_then_cksum >= 0.70 * convert_alone;
  std::printf("  shape check: checksum added to conversion costs <30%% either way\n"
              "  (paper lost 14%%) -> %s\n",
              nearly_free ? "HOLDS" : "FAILS");
  std::printf("  note: in 1990 fusing beat a second pass because the second pass\n"
              "  re-read memory; today the just-written buffer is in L1 and the\n"
              "  separate unrolled pass is effectively free, while instruction-\n"
              "  granularity fusion lengthens the encode dependency chain. The\n"
              "  paper's premise (memory traffic dominates) picks the winner —\n"
              "  see E1, where both passes are memory-bound and fusion wins.\n");
}

// ---- §4 cost profile (machine-readable) ----------------------------------------
//
// Throughput numbers vary with the machine; the PASS STRUCTURE does not.
// The accounted executors charge a CostAccount with exactly the memory
// traffic each engine performs, so the §4 claim is emitted as data:
// fused = 1 load + 1 store per word at ANY depth; layered = the copy pass
// plus one additional full pass per stage (stores only for mutating
// stages). The JSON line is stable across machines and runs.
void print_cost_profile() {
  ByteBuffer src = make_buffer(kBuf), dst(kBuf);
  ChaChaKey key{};
  obs::MetricsRegistry reg;

  obs::CostAccount fused2, layered2, fused4, layered4;
  {
    ChecksumStage ck;
    ilp_fused_accounted(&fused2, src.span(), dst.span(), ck);
  }
  {
    ChecksumStage ck;
    ilp_layered_accounted(&layered2, src.span(), dst.span(), ck);
  }
  {
    ChecksumStage ck;
    EncryptStage enc(key, 0);
    Byteswap32Stage bs;
    ilp_fused_accounted(&fused4, src.span(), dst.span(), ck, enc, bs);
  }
  {
    ChecksumStage ck;
    EncryptStage enc(key, 0);
    Byteswap32Stage bs;
    ilp_layered_accounted(&layered4, src.span(), dst.span(), ck, enc, bs);
  }

  reg.add_source("ilp.fused.depth2",
                 [&](obs::MetricSink& s) { obs::emit_cost(s, "cost", fused2); });
  reg.add_source("ilp.layered.depth2",
                 [&](obs::MetricSink& s) { obs::emit_cost(s, "cost", layered2); });
  reg.add_source("ilp.fused.depth4",
                 [&](obs::MetricSink& s) { obs::emit_cost(s, "cost", fused4); });
  reg.add_source("ilp.layered.depth4",
                 [&](obs::MetricSink& s) { obs::emit_cost(s, "cost", layered4); });

  ngp::bench::print_header("§4 cost profile (mechanical, machine-independent)");
  std::printf("  %-18s passes/op %5.1f  loads/word %4.2f  stores/word %4.2f\n",
              "fused depth-2", fused2.passes_per_operation(), fused2.loads_per_word(),
              fused2.stores_per_word());
  std::printf("  %-18s passes/op %5.1f  loads/word %4.2f  stores/word %4.2f\n",
              "layered depth-2", layered2.passes_per_operation(),
              layered2.loads_per_word(), layered2.stores_per_word());
  std::printf("  %-18s passes/op %5.1f  loads/word %4.2f  stores/word %4.2f\n",
              "fused depth-4", fused4.passes_per_operation(), fused4.loads_per_word(),
              fused4.stores_per_word());
  std::printf("  %-18s passes/op %5.1f  loads/word %4.2f  stores/word %4.2f\n",
              "layered depth-4", layered4.passes_per_operation(),
              layered4.loads_per_word(), layered4.stores_per_word());
  std::printf("  fused touches each word once regardless of depth; every extra\n"
              "  layered stage is one more full memory pass — §4's central claim.\n");
  std::printf("COST_PROFILE_JSON %s\n", reg.snapshot().to_json().c_str());
}

// ---- Kernel-tier sweep: the production executor on every dispatch level --------
//
// run_manipulation is the single fused executor the receive path and the
// engine share; here it runs the full depth-3 plan (ChaCha20 decrypt +
// Internet-checksum verify + byteswap decode) once per SIMD tier, fused vs
// layered. The fused/layered contrast is §4's claim; the per-tier spread
// shows the dispatch table compounding on top of it without changing the
// pass structure (COST_PROFILE_JSON is tier-independent by construction).
void print_kernel_tiers() {
  using ngp::bench::measure_mbps;
  ByteBuffer wire = make_buffer(kBuf);
  ChaChaKey key{};
  for (std::size_t i = 0; i < key.key.size(); ++i) {
    key.key[i] = static_cast<std::uint8_t>(i * 3 + 7);
  }

  ManipulationPlan plan;
  plan.decrypt = true;
  plan.key = key;
  plan.checksum_kind = ChecksumKind::kInternet;
  plan.expected_checksum = compute_checksum(ChecksumKind::kInternet, wire.span());
  plan.present = PresentStage::kSwap32;
  chacha20_xor(key, 0, wire.span());

  struct TierRow {
    simd::KernelTier tier;
    double fused, layered;
  };
  const simd::KernelTier saved = simd::active_tier();
  std::vector<TierRow> rows;
  // The buffer is manipulated in place, so iterations after the first see
  // churned bytes and the verify result alternates — the per-byte WORK is
  // data-independent, which is all a throughput measurement needs.
  ByteBuffer buf = wire;
  for (std::size_t t = 0; t < simd::kKernelTierCount; ++t) {
    const auto tier = static_cast<simd::KernelTier>(t);
    if (simd::tier_table(tier) == nullptr) continue;
    simd::set_active_tier(tier);
    TierRow r{tier, 0, 0};
    plan.layered = false;
    r.fused = measure_mbps(kBuf, [&] {
      benchmark::DoNotOptimize(run_manipulation(plan, buf.span(), nullptr));
    });
    plan.layered = true;
    r.layered = measure_mbps(kBuf, [&] {
      benchmark::DoNotOptimize(run_manipulation(plan, buf.span(), nullptr));
    });
    rows.push_back(r);
  }
  simd::set_active_tier(saved);

  ngp::bench::print_header(
      "Kernel tiers: run_manipulation (decrypt+verify+swap) per SIMD level");
  std::string points;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TierRow& r = rows[i];
    std::printf("  %-8s fused %8.1f Mb/s   layered %8.1f Mb/s   gain %.2fx\n",
                simd::tier_name(r.tier), r.fused, r.layered,
                r.layered > 0 ? r.fused / r.layered : 0.0);
    char buf2[160];
    std::snprintf(buf2, sizeof buf2,
                  "%s{\"tier\":\"%s\",\"fused_mbps\":%.1f,\"layered_mbps\":%.1f}",
                  i ? "," : "", simd::tier_name(r.tier), r.fused, r.layered);
    points += buf2;
  }
  double scalar_fused = 0, best_fused = 0;
  for (const auto& r : rows) {
    if (r.tier == simd::KernelTier::kScalar) scalar_fused = r.fused;
    if (r.tier == simd::best_tier()) best_fused = r.fused;
  }
  const double ratio = scalar_fused > 0 ? best_fused / scalar_fused : 0.0;
  std::printf("  best tier (%s) vs scalar, fused executor: %.2fx\n",
              simd::tier_name(simd::best_tier()), ratio);
  char head[160];
  std::snprintf(head, sizeof head,
                "{\"bytes\":%zu,\"best_tier\":\"%s\","
                "\"best_vs_scalar_fused\":%.2f,\"tiers\":[",
                kBuf, simd::tier_name(simd::best_tier()), ratio);
  ngp::bench::emit_json("KERNEL_TIERS_JSON", std::string(head) + points + "]}");
}

}  // namespace

int main(int argc, char** argv) {
  register_pipeline_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_e1();
  print_e4();
  print_cost_profile();
  print_kernel_tiers();
  return 0;
}
