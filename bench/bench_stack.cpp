// bench_stack — reproduces E3 (§4): the full-protocol-stack experiment.
//
//   paper: "a protocol stack comprising the current Unix TCP package and
//   the ISODE implementation of the OSI upper layers. A comparison of
//   throughput with and without significant presentation conversion showed
//   that about 97% of the total protocol stack overhead was attributable
//   to the presentation conversion function. In effect, the
//   conversion-intensive case ran about 30 times slower."
//
//   Baseline case: a very long OCTET STRING (no element conversion).
//   Conversion case: an equivalent-length array of 32-bit integers.
//
// We process the same two workloads through our full end-system stack —
// presentation encode, transport segmentation + Internet checksum, then
// receive-side checksum verification, reassembly, presentation decode —
// and time each layer so the overhead attribution can be printed the way
// the paper reports it.
#include <benchmark/benchmark.h>

#include <chrono>

#include "alf/receiver.h"
#include "alf/sender.h"
#include "bench_util.h"
#include "buf/pool.h"
#include "checksum/internet.h"
#include "ilp/kernels.h"
#include "netsim/net_path.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "presentation/codec.h"
#include "util/rng.h"

namespace {

using namespace ngp;

constexpr std::size_t kBytes = 1 << 20;  // "very long" workload: 1 MB
constexpr std::size_t kMss = 1400;

// Workload seed; --seed re-rolls the application data (default matches the
// historical fixed seed).
std::uint64_t g_seed = 7;

struct LayerTimes {
  double presentation_tx = 0;
  double transport_tx = 0;  // segmentation + checksum
  double transport_rx = 0;  // verify + reassemble
  double presentation_rx = 0;

  double total() const {
    return presentation_tx + transport_tx + transport_rx + presentation_rx;
  }
  double presentation() const { return presentation_tx + presentation_rx; }
};

/// §4 cost ledgers, one per stack layer, so the timing attribution above is
/// backed by mechanical memory-pass counts in the same report.
struct StackCosts {
  obs::CostAccount presentation_tx;
  obs::CostAccount transport_tx;
  obs::CostAccount transport_rx;
  obs::CostAccount presentation_rx;

  void register_metrics(obs::MetricsRegistry& reg, const std::string& prefix) const {
    reg.add_source(prefix + ".presentation.tx", [this](obs::MetricSink& s) {
      obs::emit_cost(s, "cost", presentation_tx);
    });
    reg.add_source(prefix + ".transport.tx", [this](obs::MetricSink& s) {
      obs::emit_cost(s, "cost", transport_tx);
    });
    reg.add_source(prefix + ".transport.rx", [this](obs::MetricSink& s) {
      obs::emit_cost(s, "cost", transport_rx);
    });
    reg.add_source(prefix + ".presentation.rx", [this](obs::MetricSink& s) {
      obs::emit_cost(s, "cost", presentation_rx);
    });
  }
};

/// Runs one full stack traversal of the octet-string workload (raw mode —
/// the paper's baseline case) or the integer-array workload in `syntax`.
/// Returns per-layer CPU times.
template <bool Ints>
LayerTimes run_stack(TransferSyntax syntax, int reps, StackCosts* costs = nullptr) {
  Rng rng(g_seed);
  // Application source data.
  std::vector<std::int32_t> ints(kBytes / 4);
  for (auto& v : ints) v = static_cast<std::int32_t>(rng.next());
  ByteBuffer octets(kBytes);
  rng.fill(octets.span());

  LayerTimes t;
  using clock = std::chrono::steady_clock;
  for (int r = 0; r < reps; ++r) {
    // ---- Presentation encode (sender, application context).
    auto t0 = clock::now();
    ByteBuffer wire;
    obs::CostAccount* ptx = costs != nullptr ? &costs->presentation_tx : nullptr;
    if constexpr (Ints) {
      wire = encode_int_array(syntax, ints, ptx);
    } else {
      wire = encode_octets(syntax, octets.span(), ptx);
    }
    auto t1 = clock::now();

    // ---- Transport send: segment + checksum each segment.
    std::vector<std::uint16_t> checksums;
    checksums.reserve(wire.size() / kMss + 1);
    for (std::size_t off = 0; off < wire.size(); off += kMss) {
      const std::size_t len = std::min(kMss, wire.size() - off);
      checksums.push_back(internet_checksum_unrolled(wire.subspan(off, len)));
    }
    if (costs != nullptr) {
      // One read-only checksum pass over the whole payload.
      costs->transport_tx.charge_operation(wire.size());
      costs->transport_tx.charge_pass(wire.size(), /*stores=*/false);
    }
    auto t2 = clock::now();

    // ---- Transport receive: verify checksums + reassemble (copy into the
    // receive buffer, the unavoidable move).
    ByteBuffer rx(wire.size());
    std::size_t seg = 0;
    for (std::size_t off = 0; off < wire.size(); off += kMss, ++seg) {
      const std::size_t len = std::min(kMss, wire.size() - off);
      ConstBytes view = wire.subspan(off, len);
      if (internet_checksum_unrolled(view) != checksums[seg]) std::abort();
      copy_unrolled(view, MutableBytes{rx.data() + off, len});
    }
    if (costs != nullptr) {
      // Verify pass (read-only) + reassembly copy pass (stores).
      costs->transport_rx.charge_operation(wire.size());
      costs->transport_rx.charge_pass(wire.size(), /*stores=*/false);
      costs->transport_rx.charge_pass(wire.size(), /*stores=*/true);
    }
    auto t3 = clock::now();

    // ---- Presentation decode (receiver, application context).
    obs::CostAccount* prx = costs != nullptr ? &costs->presentation_rx : nullptr;
    if constexpr (Ints) {
      auto out = decode_int_array(syntax, rx.span(), prx);
      if (!out.ok()) std::abort();
      benchmark::DoNotOptimize(out->data());
    } else {
      auto out = decode_octets(syntax, rx.span(), prx);
      if (!out.ok()) std::abort();
      benchmark::DoNotOptimize(out->data());
    }
    auto t4 = clock::now();

    t.presentation_tx += std::chrono::duration<double>(t1 - t0).count();
    t.transport_tx += std::chrono::duration<double>(t2 - t1).count();
    t.transport_rx += std::chrono::duration<double>(t3 - t2).count();
    t.presentation_rx += std::chrono::duration<double>(t4 - t3).count();
  }
  return t;
}

void print_case(const char* name, const LayerTimes& t, double baseline_total) {
  const double mbps = megabits_per_second(kBytes, t.total());
  std::printf("  %-34s %9.1f Mb/s  slowdown %5.1fx  presentation %5.1f%% of stack\n",
              name, mbps, t.total() / baseline_total,
              100.0 * t.presentation() / t.total());
}

void run_e3(ngp::bench::BenchReport& rep) {
  using ngp::bench::print_header;
  const int reps = 8;

  // Per-layer §4 cost ledgers, telemetered: the registry is sampled
  // MANUALLY (no EventLoop here — the hub's wall-clock bench mode) after
  // every case, so each delta sample isolates one case's added cost. The
  // watchdog flags the paper's headline: the toolkit's presentation stage
  // touching at least one full memory pass' worth of bytes per rep.
  StackCosts base_costs;
  StackCosts toolkit_costs;
  obs::MetricsRegistry reg;
  base_costs.register_metrics(reg, "stack.octets_raw");
  toolkit_costs.register_metrics(reg, "stack.ints_ber_toolkit");
  obs::TelemetryHub hub(nullptr, reg);
  obs::SloWatch passes_watch;
  passes_watch.metric = "stack.ints_ber_toolkit.presentation.tx.cost.bytes_touched";
  passes_watch.threshold = 1.0 * reps * kBytes;
  std::uint64_t slo_firings = 0;
  hub.add_watch(passes_watch, [&](const obs::SloEvent&) { ++slo_firings; });
  hub.sample_at(0);  // baseline sample: every delta that follows is one case

  // Baseline: long OCTET STRING in raw/image mode (no conversion).
  const LayerTimes base = run_stack<false>(TransferSyntax::kRaw, reps, &base_costs);
  hub.sample_at(1);

  print_header("E3 (paper §4): full stack, baseline vs conversion-intensive");
  std::printf("  workload: %zu bytes end to end, MSS %zu\n", kBytes, kMss);
  print_case("octet string, raw (baseline)", base, base.total());
  print_case("int array, LWTS", run_stack<true>(TransferSyntax::kLwts, reps),
             base.total());
  print_case("int array, XDR", run_stack<true>(TransferSyntax::kXdr, reps),
             base.total());
  const LayerTimes ber = run_stack<true>(TransferSyntax::kBer, reps);
  print_case("int array, BER hand-coded", ber, base.total());
  const LayerTimes toolkit =
      run_stack<true>(TransferSyntax::kBerToolkit, reps, &toolkit_costs);
  hub.sample_at(2);
  print_case("int array, BER toolkit (ISODE-like)", toolkit, base.total());

  std::printf("\n  paper: conversion-intensive ~30x slower; ~97%% of stack overhead\n");
  std::printf("         was presentation. hand-tuned conversion alone is 4-5x.\n");
  const double overhead_frac =
      (toolkit.presentation() - base.presentation()) / (toolkit.total() - base.total());
  std::printf("  ours: toolkit slowdown %.1fx; share of ADDED overhead attributable\n"
              "        to presentation: %.1f%%\n",
              toolkit.total() / base.total(), 100.0 * overhead_frac);
  std::printf("  shape checks:\n");
  std::printf("    toolkit case dominated by presentation (>80%%): %s\n",
              toolkit.presentation() / toolkit.total() > 0.8 ? "HOLDS" : "FAILS");
  std::printf("    toolkit slowdown >> hand-coded slowdown: %s (%.1fx vs %.1fx)\n",
              toolkit.total() > 2 * ber.total() ? "HOLDS" : "FAILS",
              toolkit.total() / base.total(), ber.total() / base.total());

  // Machine-readable per-layer cost profile: the timing attribution above,
  // re-derived as memory-pass counts (deterministic across machines).
  rep.metric("toolkit_slowdown", toolkit.total() / base.total())
      .metric("presentation_share_of_added_overhead", overhead_frac)
      .hold("toolkit_dominated_by_presentation",
            toolkit.presentation() / toolkit.total() > 0.8)
      .hold("toolkit_slower_than_hand_coded", toolkit.total() > 2 * ber.total());

  ngp::bench::emit_json("STACK_SNAPSHOT_JSON", reg.snapshot().to_json());
  ngp::bench::emit_json("TELEMETRY_JSON",
                        ngp::bench::JsonWriter()
                            .field("samples", hub.samples().size())
                            .field("slo_firings", slo_firings)
                            .str());
}

// ---- Zero-copy datapath copy ledger (DESIGN.md §12) ---------------------------
//
// The same seeded ALF file transfer through the simulated stack twice:
// once on the classic flat path (stage, place-by-copy, manipulate-by-copy)
// and once on the pooled path (Link writes into the rx pool, the receiver
// reassembles by reference, the sender prepares in place). The ledger is
// the §4 memory-traffic taxonomy: copied bytes = 8 x word stores charged
// to the sender-manipulation + receiver-reassembly + receiver-manipulation
// accounts. The link's own transfer charge is identical on both paths and
// reported separately.
struct LedgerRun {
  std::uint64_t copied = 0;       ///< host-side copied bytes (the ledger)
  std::uint64_t link = 0;         ///< wire transfer stores (both paths pay it)
  std::uint64_t payload = 0;      ///< application bytes delivered
  std::uint64_t chains = 0;       ///< ADUs delivered as chains
  double elapsed = 0;             ///< wall-clock for the simulated transfer
};

LedgerRun run_ledger_transfer(bool pooled, std::size_t adus, std::size_t adu_len) {
  LedgerRun out;
  out.elapsed = ngp::bench::time_once([&] {
    EventLoop loop;
    LinkConfig lc;
    lc.bandwidth_bps = 1e9;
    lc.propagation_delay = kMillisecond;
    lc.queue_limit = 1 << 16;
    DuplexChannel channel(loop, lc);
    LinkPath data(channel.forward);
    LinkPath feedback_tx(channel.reverse);
    LinkPath feedback_rx(channel.reverse);

    buf::BufferPool pool;
    alf::SessionConfig scfg;
    alf::AlfSender sender(loop, data, feedback_rx, scfg);
    alf::AlfReceiver receiver(loop, data, feedback_tx, scfg);
    if (pooled) {
      channel.forward.set_rx_pool(&pool);
      receiver.set_rx_pool(&pool);
      receiver.set_on_adu_chain([&](AduChain&& a) {
        out.payload += a.payload.size();
        ++out.chains;
      });
    } else {
      receiver.set_on_adu([&](Adu&& a) { out.payload += a.payload.size(); });
    }

    Rng rng(g_seed);
    ByteBuffer payload(adu_len);
    for (std::uint64_t i = 0; i < adus; ++i) {
      rng.fill(payload.span());
      if (pooled) {
        buf::BufRef ref = pool.alloc(payload.size());
        std::memcpy(ref.data(), payload.data(), payload.size());
        sender.send_adu(generic_name(i), buf::Slice{std::move(ref), 0, payload.size()})
            .value();
      } else {
        sender.send_adu(generic_name(i), payload.span()).value();
      }
    }
    sender.finish();
    loop.run();

    out.copied = (sender.manipulation_cost().word_stores +
                  receiver.manipulation_cost().word_stores +
                  receiver.reassembly_cost().word_stores) *
                 8;
    out.link = channel.forward.transfer_cost().word_stores * 8;
  });
  return out;
}

void run_copy_ledger(ngp::bench::BenchReport& rep) {
  const std::size_t adus = 256, adu_len = 16 * 1024;
  const LedgerRun flat = run_ledger_transfer(false, adus, adu_len);
  const LedgerRun pooled = run_ledger_transfer(true, adus, adu_len);

  ngp::bench::print_header("Copy ledger (DESIGN.md §12): flat vs pooled datapath");
  std::printf("  workload: %zu ADUs x %zu bytes over the simulated link\n", adus,
              adu_len);
  std::printf("  %-28s %14s %14s\n", "", "flat", "pooled");
  std::printf("  %-28s %14llu %14llu\n", "host copied bytes",
              static_cast<unsigned long long>(flat.copied),
              static_cast<unsigned long long>(pooled.copied));
  std::printf("  %-28s %14llu %14llu\n", "wire transfer bytes",
              static_cast<unsigned long long>(flat.link),
              static_cast<unsigned long long>(pooled.link));
  const double drop =
      flat.copied > 0
          ? 100.0 * (1.0 - static_cast<double>(pooled.copied) /
                               static_cast<double>(flat.copied))
          : 0.0;
  std::printf("  copied-bytes drop: %.1f%% (acceptance floor 40%%) -> %s\n", drop,
              drop >= 40.0 ? "HOLDS" : "FAILS");
  std::printf("  pooled chains delivered: %llu / %zu; payload byte-identical "
              "runs are pinned by ctest -L zerocopy\n",
              static_cast<unsigned long long>(pooled.chains), adus);

  // The copied-bytes ledger is deterministic (§4 arithmetic, not wall
  // time): tracked at zero tolerance so any future change that sneaks a
  // copy back into the pooled path fails the trajectory.
  rep.tracked("pooled_copied_bytes", pooled.copied, /*higher=*/false, 0.0)
      .tracked("copied_drop_pct", drop, /*higher=*/true, 0.1)
      .metric("flat_copied_bytes", flat.copied)
      .metric("link_transfer_bytes", flat.link)
      .metric("pooled_chains_delivered", pooled.chains)
      .hold("copied_bytes_drop_40pct", drop >= 40.0)
      .hold("all_chains_delivered", pooled.chains == adus);

  ngp::bench::emit_json(
      "COPY_LEDGER_JSON",
      ngp::bench::JsonWriter()
          .field("adus", adus)
          .field("adu_bytes", adu_len)
          .field("payload_bytes", flat.payload)
          .field("flat_copied_bytes", flat.copied)
          .field("pooled_copied_bytes", pooled.copied)
          .field("link_transfer_bytes", flat.link)
          .field("copied_drop_pct", drop)
          .field("pooled_chains_delivered", pooled.chains)
          .field("holds_40pct_floor", drop >= 40.0)
          .str());
}

// google-benchmark registration of the end-to-end stack per syntax.
void BM_Stack(benchmark::State& state, TransferSyntax syntax, bool ints) {
  for (auto _ : state) {
    LayerTimes t = ints ? run_stack<true>(syntax, 1) : run_stack<false>(syntax, 1);
    benchmark::DoNotOptimize(t.total());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBytes));
}

void register_benches() {
  benchmark::RegisterBenchmark("stack/octets_raw", [](benchmark::State& s) {
    BM_Stack(s, TransferSyntax::kRaw, false);
  });
  benchmark::RegisterBenchmark("stack/ints_lwts", [](benchmark::State& s) {
    BM_Stack(s, TransferSyntax::kLwts, true);
  });
  benchmark::RegisterBenchmark("stack/ints_xdr", [](benchmark::State& s) {
    BM_Stack(s, TransferSyntax::kXdr, true);
  });
  benchmark::RegisterBenchmark("stack/ints_ber", [](benchmark::State& s) {
    BM_Stack(s, TransferSyntax::kBer, true);
  });
  benchmark::RegisterBenchmark("stack/ints_ber_toolkit", [](benchmark::State& s) {
    BM_Stack(s, TransferSyntax::kBerToolkit, true);
  });
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the shared bench flags BEFORE google-benchmark sees argv.
  const ngp::bench::Args args = ngp::bench::parse_args(&argc, argv);
  g_seed = args.seed != 1 ? args.seed : g_seed;
  register_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ngp::bench::BenchReport rep("zerocopy", args);
  run_e3(rep);
  run_copy_ledger(rep);
  if (!rep.emit("ZEROCOPY_REPORT_JSON")) return 1;
  return 0;
}
