// bench_striping — E7 (extension): §7's parallel-delivery claim, measured.
//
//   "The solution seems to be to separate the network into several parts,
//   each of which delivers part of the data to part of the processor...
//   if the data is organized into ADUs, each ADU will contain enough
//   information to control its own delivery."
//
// Sweep the lane count for a fixed transfer: aggregate goodput should
// scale with lanes (no coordination hot spot), and the same sweep under
// loss shows each lane recovering independently. The paper publishes no
// numbers for §7, so this is an extension experiment; the shape target is
// near-linear scaling.
#include <cstdio>
#include <memory>

#include "alf/file_sink.h"
#include "alf/striper.h"
#include "bench_util.h"
#include "netsim/net_path.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace ngp;

constexpr std::size_t kFile = 8 << 20;
constexpr std::size_t kAdu = 8192;
constexpr double kLaneBps = 25e6;

struct RunResult {
  double seconds;
  double goodput_mbps;
  bool intact;
};

RunResult run(std::size_t lanes, double loss) {
  EventLoop loop;
  std::vector<std::unique_ptr<DuplexChannel>> channels;
  std::vector<std::unique_ptr<LinkPath>> paths;
  std::vector<std::unique_ptr<alf::AlfSender>> senders;
  std::vector<std::unique_ptr<alf::AlfReceiver>> receivers;
  std::vector<alf::AlfSender*> tx;
  std::vector<alf::AlfReceiver*> rx;

  for (std::size_t i = 0; i < lanes; ++i) {
    LinkConfig cfg;
    cfg.bandwidth_bps = kLaneBps;
    cfg.propagation_delay = 3 * kMillisecond;
    cfg.queue_limit = 1 << 16;
    cfg.seed = 3000 + i;
    channels.push_back(std::make_unique<DuplexChannel>(loop, cfg));
    channels.back()->forward.set_loss_rate(loss);
    auto& ch = *channels.back();
    paths.push_back(std::make_unique<LinkPath>(ch.forward));
    LinkPath* data = paths.back().get();
    paths.push_back(std::make_unique<LinkPath>(ch.reverse));
    LinkPath* fb_tx = paths.back().get();
    paths.push_back(std::make_unique<LinkPath>(ch.reverse));
    LinkPath* fb_rx = paths.back().get();

    alf::SessionConfig scfg;
    scfg.session_id = static_cast<std::uint16_t>(i + 1);
    scfg.nack_delay = 15 * kMillisecond;
    senders.push_back(std::make_unique<alf::AlfSender>(loop, *data, *fb_rx, scfg));
    receivers.push_back(std::make_unique<alf::AlfReceiver>(loop, *data, *fb_tx, scfg));
    tx.push_back(senders.back().get());
    rx.push_back(receivers.back().get());
  }

  alf::AlfStriper striper(tx);
  alf::StripeCollector collector(rx);
  alf::FileSink sink(kFile);
  collector.set_on_adu([&](std::size_t, Adu&& adu) { (void)sink.place(adu); });

  ByteBuffer file(kFile);
  Rng rng(0xE7);
  rng.fill(file.span());
  for (std::size_t off = 0; off < kFile; off += kAdu) {
    const std::size_t len = std::min(kAdu, kFile - off);
    if (!striper.send_adu(FileRegionName{off, len}.to_name(),
                          file.span().subspan(off, len))
             .ok()) {
      std::abort();
    }
  }
  striper.finish();
  loop.run();

  RunResult r;
  r.seconds = to_seconds(loop.now());
  r.goodput_mbps = megabits_per_second(sink.bytes_placed(), r.seconds);
  r.intact = ByteBuffer(sink.contents()) == file;
  return r;
}

}  // namespace

int main() {
  std::printf("=== E7 (§7 extension): ADU striping across parallel lanes ===\n");
  std::printf("%u MB transfer, %.0f Mb/s per lane\n\n", kFile >> 20, kLaneBps / 1e6);

  for (double loss : {0.0, 0.02}) {
    std::printf("-- %.0f%% per-lane loss --\n", loss * 100);
    std::printf("%6s | %8s | %10s | %9s | %7s\n", "lanes", "time(s)", "Mb/s",
                "scaling", "intact");
    double base = 0;
    for (std::size_t lanes : {1u, 2u, 4u, 8u}) {
      RunResult r = run(lanes, loss);
      if (lanes == 1) base = r.goodput_mbps;
      std::printf("%6zu | %8.3f | %10.1f | %8.2fx | %7s\n", lanes, r.seconds,
                  r.goodput_mbps, r.goodput_mbps / base, r.intact ? "yes" : "NO");
      ngp::bench::emit_json("E7_JSON", ngp::bench::JsonWriter()
                                           .field("loss", loss)
                                           .field("lanes", lanes)
                                           .field("seconds", r.seconds)
                                           .field("goodput_mbps", r.goodput_mbps)
                                           .field("scaling", r.goodput_mbps / base)
                                           .field("intact", r.intact)
                                           .str());
    }
  }
  std::printf("\nshape: aggregate goodput scales with lane count because every\n"
              "ADU is self-describing — no inter-lane coordination, no hot spot\n"
              "(the paper's parallel-processor argument, §7).\n");
  return 0;
}
