// bench_sessiond — E11: the sharded session plane at 100k+ sessions.
//
// One host terminates a session population the pre-sessiond idiom could
// never express (a handler registration per flow): frames arrive over
// netsim ingress links, the Dispatcher peeks the flow id off each frame,
// and the SessionTable materializes an AlfReceiver per flow on first
// frame. Four phases over one deterministic sim:
//
//   baseline     1k resident sessions; wall-clock p99 of dispatcher
//                routing (the yardstick the full-scale p99 is held to).
//   storm        connect storm to the full population (120k sessions full,
//                20k smoke) through the ingress links, batched against the
//                link queues. Reports wall-clock creation rate.
//   churn        rounds of close-and-reconnect over a tenth of the
//                population (the table's erase + create-on-first-frame
//                path under load).
//   idle sweep   the warm half of the population keeps talking, the cold
//                half goes quiet; sweep_idle() must evict exactly the cold
//                half and leave every warm flow resident.
//
// HOLDS self-checks (exit non-zero on violation):
//   * the storm reaches the target population, every create accounted;
//   * p99 dispatch latency at full population <= 2x the 1k baseline
//     (full mode only — smoke populations are too small to pressure the
//     table, so smoke reports the ratio without gating);
//   * churn recreates exactly what it closed;
//   * the idle sweep evicts exactly the cold half, warm flows survive;
//   * per-shard metrics export nests under table.shard<i>.* and the
//     SESSIOND_JSON record is well-formed.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "alf/session.h"
#include "alf/wire.h"
#include "bench_util.h"
#include "netsim/link.h"
#include "netsim/net_path.h"
#include "obs/metrics.h"
#include "sessiond/sessiond.h"

namespace {

using namespace ngp;
using sessiond::FlowId;

// session_id is 16-bit on the wire: populations past 60k span multiple
// ingress peers (exactly how a real ALF host would see them).
constexpr std::size_t kFlowsPerPeer = 60'000;
constexpr SimDuration kIdleTimeout = 5 * kSecond;

struct Shape {
  std::size_t sessions;
  std::size_t shards;
  std::size_t probes;       ///< latency samples per probe phase
  std::size_t churn_rounds;
};

Shape shape(bool smoke) {
  if (smoke) return {20'000, 64, 8'192, 2};
  return {120'000, 256, 16'384, 3};
}

FlowId flow_of(std::size_t i, const std::vector<std::uint32_t>& peers) {
  return {peers[i / kFlowsPerPeer],
          static_cast<std::uint16_t>(1 + i % kFlowsPerPeer)};
}

/// A deliverable single-fragment DATA frame for (session, adu).
ByteBuffer make_frame(std::uint16_t session, std::uint32_t adu_id,
                      std::size_t payload_len = 32) {
  static thread_local std::vector<std::uint8_t> payload;
  payload.assign(payload_len, static_cast<std::uint8_t>(adu_id));
  alf::DataFragment f;
  f.session = session;
  f.adu_id = adu_id;
  f.name = generic_name(adu_id);
  f.adu_len = static_cast<std::uint32_t>(payload.size());
  f.frag_off = 0;
  f.adu_checksum = compute_checksum(ChecksumKind::kInternet,
                                    ConstBytes(payload.data(), payload.size()));
  f.payload = ConstBytes(payload.data(), payload.size());
  return alf::encode_fragment(f);
}

/// One MTU-style fragment of a larger ADU; the checksum covers the whole
/// ADU (verified by the receiver on completion), so the full payload is
/// synthesized per ADU and sliced.
ByteBuffer make_adu_fragment(std::uint16_t session, std::uint32_t adu_id,
                             std::size_t adu_len, std::size_t frag_off,
                             std::size_t frag_len) {
  static thread_local std::vector<std::uint8_t> adu;
  static thread_local std::uint64_t cached_key = ~std::uint64_t{0};
  static thread_local std::uint32_t cached_sum = 0;
  const std::uint64_t key = (std::uint64_t{adu_id} << 24) | adu_len;
  if (key != cached_key) {
    adu.assign(adu_len, static_cast<std::uint8_t>(adu_id));
    cached_sum = compute_checksum(ChecksumKind::kInternet,
                                  ConstBytes(adu.data(), adu.size()));
    cached_key = key;
  }
  alf::DataFragment f;
  f.session = session;
  f.adu_id = adu_id;
  f.name = generic_name(adu_id);
  f.adu_len = static_cast<std::uint32_t>(adu_len);
  f.frag_off = static_cast<std::uint32_t>(frag_off);
  f.adu_checksum = cached_sum;
  f.payload = ConstBytes(adu.data() + frag_off, frag_len);
  return alf::encode_fragment(f);
}

double wall_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Wall-clock p99 per-frame dispatch cost (µs) of realistic serving
/// traffic: each probed flow receives one fresh in-order 22.4 KB ADU as 16
/// contiguous MTU-sized fragments (an ADU's fragments leave the sender's
/// link back-to-back — single-fragment probes would model a workload where
/// every frame cold-touches a different session, which no ALF sender
/// produces). Cost is measured over 64-frame bursts, p99 across bursts,
/// best of 3 repetitions: on a shared core a stray preemption inside a
/// burst inflates the tail by orders of magnitude — the min p99 is the
/// machine's answer, the max is the scheduler's. Probed flows round-robin
/// the population; `next_adu` keeps each flow's sequence gapless so every
/// probe does identical protocol work regardless of population size.
double probe_p99_us(sessiond::Sessiond& daemon, std::size_t population,
                    const std::vector<std::uint32_t>& peers,
                    std::size_t probes, std::vector<std::uint32_t>& next_adu) {
  constexpr std::size_t kBurst = 64;
  constexpr std::size_t kFragsPerAdu = 16;
  constexpr std::size_t kFragLen = 1400;
  constexpr int kReps = 3;
  const std::size_t flows_per_rep = probes / kFragsPerAdu;
  const std::size_t stride =
      std::max<std::size_t>(1, population / flows_per_rep);
  std::vector<ByteBuffer> frames;
  std::vector<std::uint32_t> frame_peers;
  frames.reserve(kBurst);
  frame_peers.reserve(kBurst);
  std::vector<double> us;
  us.reserve(probes / kBurst);
  std::size_t i = 0;
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    us.clear();
    for (std::size_t n = 0; n + kBurst <= probes; n += kBurst) {
      frames.clear();
      frame_peers.clear();
      for (std::size_t a = 0; a < kBurst / kFragsPerAdu;
           ++a, i = (i + stride) % population) {
        const FlowId flow = flow_of(i, peers);
        for (std::size_t fr = 0; fr < kFragsPerAdu; ++fr) {
          frames.push_back(make_adu_fragment(flow.session_id, next_adu[i],
                                             kFragsPerAdu * kFragLen,
                                             fr * kFragLen, kFragLen));
          frame_peers.push_back(flow.peer);
        }
        ++next_adu[i];
      }
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t b = 0; b < kBurst; ++b) {
        daemon.dispatcher().dispatch(frame_peers[b], frames[b].span());
      }
      us.push_back(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - t0)
                       .count() /
                   kBurst);
    }
    std::sort(us.begin(), us.end());
    const double p99 = us[us.size() * 99 / 100];
    if (rep == 0 || p99 < best) best = p99;
  }
  return best;
}

struct Hold {
  std::string name;
  bool ok;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(&argc, argv);
  const Shape sh = shape(args.smoke);

  EventLoop loop;

  // Ingress: one duplex channel per peer block. Fat, short links — the
  // bench measures the session plane, not the wire.
  LinkConfig lc;
  lc.bandwidth_bps = 10e9;
  lc.propagation_delay = 10 * kMicrosecond;
  lc.queue_limit = 4096;
  lc.seed = args.seed;
  const std::size_t n_peers = (sh.sessions + kFlowsPerPeer - 1) / kFlowsPerPeer;
  std::vector<std::unique_ptr<DuplexChannel>> channels;
  std::vector<std::uint32_t> peers;
  sessiond::Sessiond::Config dcfg;
  dcfg.table.shards = sh.shards;
  dcfg.table.max_sessions = 2 * sh.sessions;
  dcfg.table.idle_timeout = kIdleTimeout;
  dcfg.table.initial_shard_capacity = 64;
  sessiond::Sessiond daemon(loop, dcfg);

  std::vector<LinkPath> ingress;
  ingress.reserve(n_peers);
  for (std::size_t p = 0; p < n_peers; ++p) {
    channels.push_back(std::make_unique<DuplexChannel>(loop, lc));
    ingress.emplace_back(channels[p]->forward);
  }
  LinkPath feedback(channels[0]->reverse);
  for (std::size_t p = 0; p < n_peers; ++p) peers.push_back(daemon.bind(ingress[p]));

  // Receive-only sessions, tuned for population scale: the progress
  // heartbeat pushed past the sim horizon (120k recurring timers would BE
  // the benchmark), watchdog off, a small ADU-id window per flow.
  alf::SessionConfig base;
  base.progress_interval = 3600 * kSecond;
  base.stall_timeout = 0;
  base.adu_id_window = 64;
  std::uint64_t adus_delivered = 0;
  sessiond::ReceiverFactoryOptions fopts;
  fopts.configure = [&adus_delivered](const FlowId&, alf::AlfReceiver& rx) {
    rx.set_on_adu([&adus_delivered](Adu&&) { ++adus_delivered; });
  };
  daemon.set_factory(sessiond::alf_receiver_factory(loop, feedback, base, fopts));

  obs::MetricsRegistry registry;
  daemon.register_metrics(registry, "sessiond");

  auto storm = [&](std::size_t from, std::size_t to, std::uint32_t adu_id) {
    // Batched against the link queue: send a queue's worth, drain the sim.
    std::size_t sent = 0;
    for (std::size_t i = from; i < to; ++i) {
      const FlowId flow = flow_of(i, peers);
      const ByteBuffer frame = make_frame(flow.session_id, adu_id);
      channels[i / kFlowsPerPeer]->forward.send(frame.span());
      if (++sent % 2048 == 0) loop.run_until(loop.now() + 10 * kMillisecond);
    }
    loop.run_until(loop.now() + 10 * kMillisecond);
  };

  std::vector<Hold> holds;
  auto hold = [&holds](std::string name, bool ok) {
    std::printf("HOLDS %-34s %s\n", name.c_str(), ok ? "pass" : "FAIL");
    holds.push_back({std::move(name), ok});
  };

  // ---- phase 1: 1k baseline --------------------------------------------
  constexpr std::size_t kBaseline = 1'000;
  std::vector<std::uint32_t> next_adu(sh.sessions, 2);
  storm(0, kBaseline, 1);
  const double p99_1k_us =
      probe_p99_us(daemon, kBaseline, peers, sh.probes, next_adu);
  std::printf("baseline: %zu sessions, p99 dispatch %.2f us\n", kBaseline,
              p99_1k_us);

  // ---- phase 2: connect storm ------------------------------------------
  const auto storm_t0 = std::chrono::steady_clock::now();
  storm(kBaseline, sh.sessions, 1);
  const double storm_ms = wall_ms(storm_t0);
  const std::size_t population = daemon.table().size();
  const double create_rate =
      (sh.sessions - kBaseline) / std::max(storm_ms, 1e-6) * 1e3;
  std::printf("storm:    %zu sessions resident in %.0f ms (%.0f creates/s)\n",
              population, storm_ms, create_rate);
  hold("storm_reaches_population", population == sh.sessions);
  hold("every_create_accounted",
       daemon.dispatcher().stats().sessions_created == sh.sessions &&
           daemon.dispatcher().stats().creates_rejected == 0 &&
           daemon.dispatcher().stats().frames_unroutable == 0);

  // ---- phase 3: p99 at full population ---------------------------------
  const double p99_full_us =
      probe_p99_us(daemon, sh.sessions, peers, sh.probes, next_adu);
  const double p99_ratio = p99_full_us / std::max(p99_1k_us, 1e-9);
  std::printf("full:     p99 dispatch %.2f us at %zu sessions (%.2fx of 1k)\n",
              p99_full_us, population, p99_ratio);
  if (!args.smoke) hold("p99_within_2x_of_1k", p99_ratio <= 2.0);

  // ---- phase 4: churn --------------------------------------------------
  const std::size_t churn_n = sh.sessions / 10;
  std::uint64_t churned = 0;
  for (std::size_t round = 0; round < sh.churn_rounds; ++round) {
    // Spread closes across the population (and thus across shards).
    for (std::size_t i = round; i < sh.sessions; i += 10) {
      if (churned - round * churn_n >= churn_n) break;
      daemon.table().erase(flow_of(i, peers));
      ++churned;
    }
    const auto before = daemon.dispatcher().stats().sessions_created;
    for (std::size_t i = round; i < sh.sessions; i += 10) {
      const FlowId flow = flow_of(i, peers);
      if (daemon.table().contains(flow)) continue;
      const ByteBuffer frame = make_frame(flow.session_id, 1);
      daemon.dispatcher().dispatch(flow.peer, frame.span());
    }
    const auto created = daemon.dispatcher().stats().sessions_created - before;
    if (created + round * churn_n != churned) break;  // caught by the hold
  }
  std::printf("churn:    %llu sessions closed+reconnected over %zu rounds\n",
              static_cast<unsigned long long>(churned), sh.churn_rounds);
  hold("churn_recreates_all",
       churned == churn_n * sh.churn_rounds &&
           daemon.table().size() == sh.sessions);

  // ---- phase 5: idle sweep ---------------------------------------------
  // Odd-indexed flows go cold; even-indexed flows refresh inside the idle
  // horizon and must survive the sweep.
  loop.run_until(loop.now() + kIdleTimeout / 2);
  std::size_t warm = 0;
  for (std::size_t i = 0; i < sh.sessions; i += 2) {
    const FlowId flow = flow_of(i, peers);
    const ByteBuffer frame = make_frame(flow.session_id, 1);
    daemon.dispatcher().dispatch(flow.peer, frame.span());
    ++warm;
  }
  loop.run_until(loop.now() + kIdleTimeout * 7 / 10);
  const std::size_t evicted = daemon.sweep_idle();
  bool warm_alive = true;
  for (std::size_t i = 0; i < sh.sessions && warm_alive; i += 2) {
    warm_alive = daemon.table().contains(flow_of(i, peers));
  }
  std::printf("sweep:    %zu idle sessions evicted, %zu warm survivors\n",
              evicted, warm);
  hold("idle_sweep_exact",
       evicted == sh.sessions - warm && daemon.table().size() == warm &&
           warm_alive);

  // ---- export ----------------------------------------------------------
  const obs::Snapshot snap = registry.snapshot();
  const std::string metrics_json = snap.to_json();
  const auto shard_sizes = daemon.table().shard_sizes();
  const auto [occ_min, occ_max] =
      std::minmax_element(shard_sizes.begin(), shard_sizes.end());
  const auto tstats = daemon.table().stats();

  bench::JsonWriter jw;
  jw.field("mode", args.smoke ? "smoke" : "full")
      .field("sessions", static_cast<std::uint64_t>(sh.sessions))
      .field("population_peak", static_cast<std::uint64_t>(tstats.occupancy_peak))
      .field("shards", static_cast<std::uint64_t>(sh.shards))
      .field("storm_wall_ms", storm_ms)
      .field("creates_per_sec", create_rate)
      .field("p99_dispatch_1k_us", p99_1k_us)
      .field("p99_dispatch_full_us", p99_full_us)
      .field("p99_ratio", p99_ratio)
      .field("churned", churned)
      .field("idle_evicted", static_cast<std::uint64_t>(evicted))
      .field("warm_survivors", static_cast<std::uint64_t>(warm))
      .field("adus_delivered", adus_delivered)
      .field("shard_occupancy_min", static_cast<std::uint64_t>(*occ_min))
      .field("shard_occupancy_max", static_cast<std::uint64_t>(*occ_max))
      .field("evictions_idle", tstats.evictions_idle)
      .field("evictions_shed", tstats.evictions_shed)
      .field("admission_rejects", tstats.admission_rejects);
  const std::string json = jw.str();

  hold("per_shard_metrics_exported",
       metrics_json.find("sessiond.table.shard0.occupancy") !=
               std::string::npos &&
           metrics_json.find("sessiond.dispatch.frames_dispatched") !=
               std::string::npos);
  hold("json_well_formed", bench::json_well_formed(json) &&
                               bench::json_well_formed(metrics_json));

  bench::emit_json("SESSIOND_JSON", json);

  bench::BenchReport rep("sessiond", args);
  rep.metric("sessions", static_cast<std::uint64_t>(sh.sessions))
      .metric("storm_wall_ms", storm_ms)
      .tracked("creates_per_sec", create_rate, /*higher=*/true, 0.6)
      .metric("p99_dispatch_1k_us", p99_1k_us)
      .metric("p99_dispatch_full_us", p99_full_us)
      .tracked("p99_ratio", p99_ratio, /*higher=*/false, 0.9)
      .metric("churned", churned)
      .metric("idle_evicted", static_cast<std::uint64_t>(evicted))
      .metric("adus_delivered", adus_delivered);
  for (const Hold& h : holds) rep.hold(h.name, h.ok);
  if (!rep.emit("SESSIOND_REPORT_JSON")) return 1;

  bool ok = true;
  for (const Hold& h : holds) ok = ok && h.ok;
  return ok ? 0 : 1;
}
