// bench_engine — E9: scaling of the out-of-order manipulation engine.
//
// The §4/§5 case for parallel manipulation, measured: per-ADU work
// (ChaCha20 decrypt + fused Internet-checksum verify + BER presentation
// decode) is embarrassingly parallel BECAUSE ALF names ADUs in an
// application name-space and promises nothing about processing order. So
// the same job set is pushed through ngp::engine at workers = 0 (inline,
// the deterministic baseline), 1, 2, 4 and 8, and three things are
// reported per point:
//
//   * manipulation throughput (Mb/s over the encrypted wire bytes);
//   * an order-independent hash of every finished payload — byte-identical
//     results across ALL worker counts, or the run flags itself;
//   * the merged §4 cost ledger — identical across ALL worker counts
//     (commutative merges), or the run flags itself.
//
// The ENGINE_SCALING_JSON line is the machine-readable summary.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "checksum/checksum.h"
#include "crypto/chacha20.h"
#include "engine/engine.h"
#include "netsim/net_path.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "presentation/codec.h"
#include "sessiond/sessiond.h"
#include "simd/dispatch.h"
#include "util/rng.h"

namespace {

using namespace ngp;

constexpr std::size_t kIntsPerAdu = 8192;  // ~37 KB of BER per ADU
constexpr std::size_t kAdus = 192;

ChaChaKey session_key() {
  ChaChaKey k{};
  for (std::size_t i = 0; i < k.key.size(); ++i) {
    k.key[i] = static_cast<std::uint8_t>(i * 11 + 3);
  }
  return k;
}

struct WireAdu {
  ByteBuffer wire;  ///< encrypted BER int-array
  ManipulationPlan plan;
};

/// The session's ADU set: BER-encoded int arrays, checksummed in the
/// clear, then encrypted with the per-ADU nonce — exactly the wire state
/// an AlfReceiver hands the engine.
std::vector<WireAdu> make_session(std::uint64_t seed) {
  std::vector<WireAdu> adus;
  adus.reserve(kAdus);
  Rng rng(seed);
  for (std::size_t a = 0; a < kAdus; ++a) {
    std::vector<std::int32_t> ints(kIntsPerAdu);
    for (auto& v : ints) v = static_cast<std::int32_t>(rng.next());
    WireAdu w;
    w.wire = encode_int_array(TransferSyntax::kBer, ints);
    w.plan.decrypt = true;
    w.plan.key = session_key();
    store_u32_be(w.plan.key.nonce.data() + 8, static_cast<std::uint32_t>(a + 1));
    w.plan.checksum_kind = ChecksumKind::kInternet;
    w.plan.expected_checksum =
        compute_checksum(ChecksumKind::kInternet, w.wire.span());
    chacha20_xor(w.plan.key, 0, w.wire.span());
    adus.push_back(std::move(w));
  }
  return adus;
}

/// FNV-1a over 8-byte words (tail bytes zero-padded): fast enough that
/// control-side hashing stays a sliver of the per-ADU cost, so it cannot
/// mask worker-pool scaling (Amdahl) on multi-core hosts.
std::uint64_t fnv1a_words(ConstBytes b) {
  std::uint64_t h = 1469598103934665603ull;
  std::size_t i = 0;
  for (; i + 8 <= b.size(); i += 8) {
    std::uint64_t w;
    std::memcpy(&w, b.data() + i, 8);
    h = (h ^ w) * 1099511628211ull;
  }
  std::uint64_t tail = 0;
  if (i < b.size()) std::memcpy(&tail, b.data() + i, b.size() - i);
  return (h ^ tail) * 1099511628211ull;
}

struct RunResult {
  double seconds = 0;
  double mbps = 0;
  std::uint64_t output_hash = 0;  ///< XOR of per-ADU hashes: order-free
  obs::CostAccount ledger;
  std::uint64_t failed = 0;
  std::uint64_t backpressure = 0;
  std::uint64_t flight_events = 0;
  std::uint64_t flight_dropped = 0;
  std::uint64_t slo_firings = 0;
};

/// FlightRecorder clock for a loop-less wall-clock bench: a monotone step
/// counter — enough to order submit/begin/end/harvest and count drops.
SimTime step_clock(const void* ctx) {
  auto* steps = static_cast<std::uint64_t*>(const_cast<void*>(ctx));
  return static_cast<SimTime>((*steps)++);
}

RunResult run_session(const std::vector<WireAdu>& adus, unsigned workers) {
  engine::Engine eng(engine::EngineConfig{.workers = workers});
  RunResult r;
  std::size_t wire_bytes = 0;

  // Flight recording of the engine lifecycle (submit / worker begin+end /
  // harvest) plus a manually-sampled telemetry hub watching queue depth:
  // p99 ring occupancy >= 1 means control outran the pool this run.
  std::uint64_t steps = 0;
  obs::FlightRecorder flight(&step_clock, &steps);
  eng.set_flight(&flight);
  flight.set_enabled(true);
  obs::MetricsRegistry reg;
  eng.register_metrics(reg, "engine");
  obs::TelemetryHub hub(nullptr, reg);
  obs::SloWatch depth_watch;
  depth_watch.metric = "engine.queue_depth";
  depth_watch.threshold = 1.0;
  hub.add_watch(depth_watch, [&r](const obs::SloEvent&) { ++r.slo_firings; });

  const double secs = ngp::bench::time_once([&] {
    for (std::size_t a = 0; a < adus.size(); ++a) {
      wire_bytes += adus[a].wire.size();
      engine::ManipulationJob job;
      job.adu_id = static_cast<std::uint32_t>(a + 1);
      job.flight_id = obs::flight_trace_id(1, job.adu_id);
      job.payload = adus[a].wire;  // fresh copy per run: manipulated in place
      job.plan = adus[a].plan;
      // Presentation decode in application context (worker thread): BER
      // has no word kernel, so it runs as the job's app stage after the
      // fused decrypt+verify pass proves the ADU intact.
      job.app_stage = [](ByteBuffer& payload, obs::CostAccount& cost) {
        auto out = decode_int_array(TransferSyntax::kBer, payload.span(), &cost);
        if (!out.ok()) std::abort();
        payload.resize(out->size() * sizeof(std::int32_t));
        std::memcpy(payload.data(), out->data(), payload.size());
      };
      job.on_done = [&r](bool intact, ByteBuffer&& payload,
                         const obs::CostAccount& cost) {
        if (!intact) ++r.failed;
        r.output_hash ^= fnv1a_words(payload.span());
        r.ledger.merge(cost);
      };
      eng.submit(std::move(job));
      if ((a & 15) == 15) eng.poll();  // control thread keeps harvesting
    }
    eng.wait_all();
  });

  r.seconds = secs;
  r.mbps = megabits_per_second(wire_bytes, secs);
  r.backpressure = eng.stats().submit_backpressure;
  hub.sample_at(static_cast<SimTime>(steps));
  const obs::FlightStats fs = flight.stats();
  r.flight_events = fs.events_recorded;
  r.flight_dropped = fs.events_dropped;
  return r;
}

bool ledgers_equal(const obs::CostAccount& a, const obs::CostAccount& b) {
  return a.operations == b.operations && a.bytes_touched == b.bytes_touched &&
         a.words_touched == b.words_touched && a.memory_passes == b.memory_passes &&
         a.word_loads == b.word_loads && a.word_stores == b.word_stores;
}

/// The same ADU payloads in pre-encryption form (same Rng draw order as
/// make_session): the session-plane run feeds PLAINTEXT to the sender,
/// whose config-driven checksum+encrypt produces on the wire exactly the
/// state make_session() staged by hand.
std::vector<ByteBuffer> make_plaintext(std::uint64_t seed) {
  std::vector<ByteBuffer> adus;
  adus.reserve(kAdus);
  Rng rng(seed);
  for (std::size_t a = 0; a < kAdus; ++a) {
    std::vector<std::int32_t> ints(kIntsPerAdu);
    for (auto& v : ints) v = static_cast<std::int32_t>(rng.next());
    adus.push_back(encode_int_array(TransferSyntax::kBer, ints));
  }
  return adus;
}

struct PlaneResult {
  double mbps = 0;
  std::uint64_t output_hash = 0;
  std::uint64_t offloaded = 0;
  std::uint64_t delivered = 0;
};

/// Session-plane ingest: eight associations opened on one Sessiond, every
/// receiver offloading manipulation to ONE shared engine
/// (OpenOptions::engine) — the §4 shape where a single manipulation pool
/// serves all sessions on the host. The links are fat and clean so
/// manipulation still dominates; the decoded output must hash identically
/// to direct engine submission, whatever the schedule.
PlaneResult run_session_plane(const std::vector<ByteBuffer>& plain,
                              unsigned workers) {
  constexpr std::size_t kPlaneSessions = 8;
  EventLoop loop;
  engine::Engine eng(engine::EngineConfig{.workers = workers});
  sessiond::Sessiond daemon(loop);

  const auto base = alf::SessionConfig::builder()
                        .checksum(ChecksumKind::kInternet)
                        .encrypt(session_key())
                        .build();
  if (!base.ok()) std::abort();

  LinkConfig link;
  link.bandwidth_bps = 10e9;
  link.propagation_delay = 10 * kMicrosecond;
  link.queue_limit = 1 << 20;

  struct Lane {
    Lane(EventLoop& l, const LinkConfig& c)
        : ch(l, c, c), data(ch.forward), fb_tx(ch.reverse), fb_rx(ch.reverse) {}
    DuplexChannel ch;
    LinkPath data, fb_tx, fb_rx;
    sessiond::SessionHandle sess;
  };
  std::vector<std::unique_ptr<Lane>> lanes;

  PlaneResult r;
  for (std::size_t s = 0; s < kPlaneSessions; ++s) {
    lanes.push_back(std::make_unique<Lane>(loop, link));
    Lane& lane = *lanes.back();
    alf::SessionConfig cfg = base.value();
    cfg.session_id = static_cast<std::uint16_t>(s + 1);
    sessiond::OpenOptions opts;
    opts.engine = &eng;
    opts.engine_harvest_delay = kMillisecond;
    auto opened = daemon.open(cfg, {&lane.data, &lane.fb_tx, &lane.fb_rx}, opts);
    if (!opened.ok()) std::abort();
    lane.sess = std::move(opened.value());
    lane.sess.set_on_adu([&r](Adu&& a) {
      auto ints = decode_int_array(TransferSyntax::kBer, a.payload.span());
      if (!ints.ok()) std::abort();
      ByteBuffer raw(ints->size() * sizeof(std::int32_t));
      std::memcpy(raw.data(), ints->data(), raw.size());
      r.output_hash ^= fnv1a_words(raw.span());
      ++r.delivered;
    });
  }

  std::size_t wire_bytes = 0;
  const double secs = ngp::bench::time_once([&] {
    // Round-robin the ADU set across the sessions, then run the sim dry.
    for (std::size_t a = 0; a < plain.size(); ++a) {
      Lane& lane = *lanes[a % kPlaneSessions];
      wire_bytes += plain[a].size();
      if (!lane.sess.send_adu(generic_name(a + 1), plain[a].span()).ok()) {
        std::abort();
      }
    }
    for (auto& lane : lanes) lane->sess.finish();
    loop.run();
  });
  r.mbps = megabits_per_second(wire_bytes, secs);
  for (auto& lane : lanes) {
    r.offloaded += lane->sess.receiver().stats().adus_engine_offloaded;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const ngp::bench::Args args = ngp::bench::parse_args(&argc, argv);
  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());

  std::printf("=== E9: manipulation-engine scaling (decrypt + verify + BER decode) ===\n");
  const std::vector<WireAdu> adus = make_session(args.seed);
  std::size_t wire_bytes = 0;
  for (const auto& a : adus) wire_bytes += a.wire.size();
  std::printf("session: %zu ADUs, %zu wire bytes, seed %llu, host cpus %u\n\n",
              adus.size(), wire_bytes,
              static_cast<unsigned long long>(args.seed), host_cpus);

  std::vector<unsigned> sweep = {0, 1, 2, 4, 8};
  if (args.threads > 0) sweep = {0, static_cast<unsigned>(args.threads)};

  // Warm one inline pass so first-touch costs don't bias the baseline.
  (void)run_session(adus, 0);

  std::vector<RunResult> results;
  std::printf("%8s %10s %10s %9s %12s %9s %6s\n", "workers", "time(s)", "Mb/s",
              "speedup", "backpressure", "flight_ev", "slo");
  for (unsigned w : sweep) {
    RunResult r = run_session(adus, w);
    const double speedup = results.empty() ? 1.0 : results[0].mbps > 0
        ? r.mbps / results[0].mbps : 0.0;
    std::printf("%8u %10.4f %10.1f %8.2fx %12llu %9llu %6llu\n", w, r.seconds,
                r.mbps, speedup, static_cast<unsigned long long>(r.backpressure),
                static_cast<unsigned long long>(r.flight_events),
                static_cast<unsigned long long>(r.slo_firings));
    results.push_back(std::move(r));
  }
  {
    std::uint64_t ev = 0, dropped = 0, slo = 0;
    for (const RunResult& r : results) {
      ev += r.flight_events;
      dropped += r.flight_dropped;
      slo += r.slo_firings;
    }
    ngp::bench::emit_json("ENGINE_TELEMETRY_JSON",
                          ngp::bench::JsonWriter()
                              .field("flight_events", ev)
                              .field("flight_dropped", dropped)
                              .field("slo_firings", slo)
                              .str());
  }

  bool hash_ok = true, ledger_ok = true;
  std::uint64_t failed = 0;
  for (const RunResult& r : results) {
    hash_ok = hash_ok && r.output_hash == results[0].output_hash;
    ledger_ok = ledger_ok && ledgers_equal(r.ledger, results[0].ledger);
    failed += r.failed;
  }
  std::printf("\nshape checks:\n");
  std::printf("  all ADUs verified intact:                 %s\n",
              failed == 0 ? "HOLDS" : "FAILS");
  std::printf("  output bytes identical across schedules:  %s\n",
              hash_ok ? "HOLDS" : "FAILS");
  std::printf("  cost ledger identical across schedules:   %s\n",
              ledger_ok ? "HOLDS" : "FAILS");
  // The throughput claim needs real cores to stand on: workers can only
  // overlap where the host gives them hardware threads to run on.
  double best_speedup = 1.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[0].mbps > 0) {
      best_speedup = std::max(best_speedup, results[i].mbps / results[0].mbps);
    }
  }
  if (host_cpus >= 4) {
    std::printf("  >=2.5x manipulation throughput at 4 workers: %s (best %.2fx)\n",
                best_speedup >= 2.5 ? "HOLDS" : "FAILS", best_speedup);
  } else {
    std::printf("  scaling check SKIPPED: host has %u cpu(s); worker overlap\n"
                "  is impossible here (run on a multi-core host to measure it)\n",
                host_cpus);
  }

  std::string points;
  for (std::size_t i = 0; i < results.size(); ++i) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "%s{\"workers\":%u,\"mbps\":%.1f,\"speedup\":%.2f}",
                  i ? "," : "", sweep[i], results[i].mbps,
                  results[0].mbps > 0 ? results[i].mbps / results[0].mbps : 0.0);
    points += buf;
  }
  char head[192];
  std::snprintf(head, sizeof head,
                "{\"adus\":%zu,\"wire_bytes\":%zu,\"seed\":%llu,\"host_cpus\":%u,"
                "\"output_identical\":%s,\"ledger_identical\":%s,\"points\":[",
                adus.size(), wire_bytes,
                static_cast<unsigned long long>(args.seed), host_cpus,
                hash_ok ? "true" : "false", ledger_ok ? "true" : "false");
  ngp::bench::emit_json("ENGINE_SCALING_JSON", std::string(head) + points + "]}");

  // Kernel-tier sweep: the same session once per SIMD dispatch level
  // (inline schedule). The tier may move throughput only — output hash and
  // §4 ledger must match the worker-sweep baseline bit for bit, the same
  // invariance engine_test pins. (Throughput moves less here than in
  // bench_table1: the BER app stage has no word kernel and dominates.)
  std::printf("\nkernel tiers (inline schedule):\n");
  const ngp::simd::KernelTier saved_tier = ngp::simd::active_tier();
  bool tier_hash_ok = true, tier_ledger_ok = true;
  std::string tier_points;
  bool first_tier = true;
  for (std::size_t t = 0; t < ngp::simd::kKernelTierCount; ++t) {
    const auto tier = static_cast<ngp::simd::KernelTier>(t);
    if (ngp::simd::tier_table(tier) == nullptr) continue;
    ngp::simd::set_active_tier(tier);
    const RunResult r = run_session(adus, 0);
    const bool h = r.output_hash == results[0].output_hash;
    const bool l = ledgers_equal(r.ledger, results[0].ledger);
    tier_hash_ok = tier_hash_ok && h;
    tier_ledger_ok = tier_ledger_ok && l;
    failed += r.failed;
    std::printf("  %-8s %10.1f Mb/s   output %s   ledger %s\n",
                ngp::simd::tier_name(tier), r.mbps, h ? "identical" : "DIVERGED",
                l ? "identical" : "DIVERGED");
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s{\"tier\":\"%s\",\"mbps\":%.1f}",
                  first_tier ? "" : ",", ngp::simd::tier_name(tier), r.mbps);
    tier_points += buf;
    first_tier = false;
  }
  ngp::simd::set_active_tier(saved_tier);
  char tier_head[160];
  std::snprintf(tier_head, sizeof tier_head,
                "{\"best_tier\":\"%s\",\"output_identical\":%s,"
                "\"ledger_identical\":%s,\"tiers\":[",
                ngp::simd::tier_name(ngp::simd::best_tier()),
                tier_hash_ok ? "true" : "false", tier_ledger_ok ? "true" : "false");
  ngp::bench::emit_json("KERNEL_TIERS_JSON",
                        std::string(tier_head) + tier_points + "]}");

  // Session-plane ingest: the same payloads arrive as ALF ADUs through
  // Sessiond::open()ed associations sharing one engine. Transport must add
  // nothing and lose nothing: every ADU offloads, and the decoded output
  // hashes identically to direct submission.
  std::printf("\nsession plane (8 sessions, one shared engine):\n");
  const std::vector<ByteBuffer> plain = make_plaintext(args.seed);
  bool plane_ok = true;
  std::string plane_points;
  bool first_plane = true;
  for (unsigned w : {0u, 4u}) {
    const PlaneResult p = run_session_plane(plain, w);
    const bool h = p.output_hash == results[0].output_hash &&
                   p.delivered == adus.size() && p.offloaded == adus.size();
    plane_ok = plane_ok && h;
    std::printf("  workers %u: %10.1f Mb/s   offloaded %llu/%zu   output %s\n",
                w, p.mbps, static_cast<unsigned long long>(p.offloaded),
                adus.size(), h ? "identical" : "DIVERGED");
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s{\"workers\":%u,\"mbps\":%.1f}",
                  first_plane ? "" : ",", w, p.mbps);
    plane_points += buf;
    first_plane = false;
  }
  char plane_head[96];
  std::snprintf(plane_head, sizeof plane_head,
                "{\"sessions\":8,\"output_identical\":%s,\"points\":[",
                plane_ok ? "true" : "false");
  ngp::bench::emit_json("SESSIOND_ENGINE_JSON",
                        std::string(plane_head) + plane_points + "]}");

  ngp::bench::BenchReport rep("engine", args);
  rep.metric("inline_mbps", results[0].mbps)
      .tracked("best_speedup", best_speedup, /*higher=*/true, 0.4)
      .metric("adus", adus.size())
      .metric("wire_bytes", wire_bytes)
      .metric("host_cpus", host_cpus)
      .hold("all_adus_verified_intact", failed == 0)
      .hold("output_identical_across_schedules", hash_ok)
      .hold("ledger_identical_across_schedules", ledger_ok)
      .hold("output_identical_across_tiers", tier_hash_ok)
      .hold("ledger_identical_across_tiers", tier_ledger_ok)
      .hold("session_plane_output_identical", plane_ok);
  if (host_cpus >= 4) {
    rep.hold("speedup_25x_at_4_workers", best_speedup >= 2.5);
  }
  if (!rep.emit("ENGINE_REPORT_JSON")) return 1;

  return (hash_ok && ledger_ok && tier_hash_ok && tier_ledger_ok &&
          plane_ok && failed == 0)
             ? 0
             : 1;
}
