// bench_presentation — reproduces E2 (§4): presentation conversion cost
// relative to a plain copy.
//
//   paper: word-aligned copy 130 Mb/s; hand-coded ASN.1 conversion of an
//   integer array 28 Mb/s — "a factor of 4-5 slower". The ISODE-style
//   generic path was far slower still (the other end of the §4 range).
//
// We measure encode and decode of a 32-bit integer array through every
// transfer syntax, against the copy baseline, and print the slowdown
// factors next to the paper's.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ilp/kernels.h"
#include "presentation/ber.h"
#include "presentation/codec.h"
#include "presentation/lwts.h"
#include "presentation/xdr.h"
#include "util/rng.h"

namespace {

using namespace ngp;

constexpr std::size_t kElems = 16384;  // 64 KB of integers

std::vector<std::int32_t> make_values() {
  std::vector<std::int32_t> v(kElems);
  Rng rng(0xCAFE);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.next());
  return v;
}

// ---- google-benchmark registrations ----------------------------------------------

void BM_EncodeSyntax(benchmark::State& state, TransferSyntax syntax) {
  auto values = make_values();
  for (auto _ : state) {
    ByteBuffer out = encode_int_array(syntax, values);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kElems * 4));
}

void BM_DecodeSyntax(benchmark::State& state, TransferSyntax syntax) {
  auto values = make_values();
  ByteBuffer enc = encode_int_array(syntax, values);
  for (auto _ : state) {
    auto out = decode_int_array(syntax, enc.span());
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kElems * 4));
}

void register_benches() {
  for (TransferSyntax s : {TransferSyntax::kRaw, TransferSyntax::kLwts,
                           TransferSyntax::kXdr, TransferSyntax::kBer,
                           TransferSyntax::kBerToolkit}) {
    const std::string enc_name = std::string("encode/") + std::string(transfer_syntax_name(s));
    const std::string dec_name = std::string("decode/") + std::string(transfer_syntax_name(s));
    benchmark::RegisterBenchmark(enc_name.c_str(),
                                 [s](benchmark::State& st) { BM_EncodeSyntax(st, s); });
    benchmark::RegisterBenchmark(dec_name.c_str(),
                                 [s](benchmark::State& st) { BM_DecodeSyntax(st, s); });
  }
}

// ---- Paper-style summary ----------------------------------------------------------

void print_e2() {
  using ngp::bench::measure_mbps;
  using ngp::bench::print_header;
  using ngp::bench::print_row;

  auto values = make_values();
  const std::size_t bytes = kElems * 4;
  ByteBuffer src(bytes), dst(bytes);
  Rng rng(1);
  rng.fill(src.span());

  const double copy = measure_mbps(bytes, [&] {
    copy_unrolled(src.span(), dst.span());
    benchmark::DoNotOptimize(dst.data());
  });

  print_header("E2 (paper §4): presentation conversion vs copy (encode side)");
  print_row("word-aligned copy (baseline)", copy);
  struct Row {
    TransferSyntax syntax;
    const char* note;
  };
  const Row rows[] = {
      {TransferSyntax::kLwts, "light-weight syntax [8]"},
      {TransferSyntax::kXdr, "Sun XDR [16]"},
      {TransferSyntax::kBer, "ASN.1 BER, hand-coded"},
      {TransferSyntax::kBerToolkit, "ASN.1 BER, prototype toolkit"},
  };
  // Steady-state encode: a reused scratch buffer, as a real datapath would
  // do (the one-shot API's allocation would otherwise dominate LWTS).
  auto encode_into = [&](TransferSyntax s, ByteBuffer& out) {
    switch (s) {
      case TransferSyntax::kLwts: lwts::encode_int_array_into(values, out); break;
      case TransferSyntax::kXdr: xdr::encode_int_array_into(values, out); break;
      case TransferSyntax::kBer: ber::encode_int_array_into(values, out); break;
      default: out = encode_int_array(s, values); break;
    }
  };
  ngp::bench::JsonWriter syntaxes_json;
  for (const auto& row : rows) {
    ByteBuffer out;
    const double enc = measure_mbps(bytes, [&] {
      encode_into(row.syntax, out);
      benchmark::DoNotOptimize(out.data());
    });
    std::printf("  %-28s %10.1f Mb/s   copy/this = %5.1fx   (%s)\n",
                std::string(transfer_syntax_name(row.syntax)).c_str(), enc,
                copy / enc, row.note);
    ByteBuffer enc_buf = encode_int_array(row.syntax, values);
    const double dec = measure_mbps(bytes, [&] {
      auto o = decode_int_array(row.syntax, enc_buf.span());
      benchmark::DoNotOptimize(o.ok());
    });
    syntaxes_json.raw(transfer_syntax_name(row.syntax),
                      ngp::bench::JsonWriter()
                          .field("encode_mbps", enc)
                          .field("decode_mbps", dec)
                          .field("copy_over_encode", copy / enc)
                          .str());
  }
  std::printf("  paper: copy 130 Mb/s, hand-coded ASN.1 28 Mb/s -> 4-5x slower\n");

  print_header("E2b: decode side");
  for (const auto& row : rows) {
    ByteBuffer enc_buf = encode_int_array(row.syntax, values);
    const double dec = measure_mbps(bytes, [&] {
      auto out = decode_int_array(row.syntax, enc_buf.span());
      benchmark::DoNotOptimize(out.ok());
    });
    std::printf("  %-28s %10.1f Mb/s   copy/this = %5.1fx\n",
                std::string(transfer_syntax_name(row.syntax)).c_str(), dec,
                copy / dec);
  }

  // Shape checks.
  ByteBuffer tmp;
  const double ber_enc = measure_mbps(bytes, [&] {
    ber::encode_int_array_into(values, tmp);
    benchmark::DoNotOptimize(tmp.data());
  });
  const double toolkit_enc = measure_mbps(bytes, [&] {
    tmp = encode_int_array(TransferSyntax::kBerToolkit, values);
    benchmark::DoNotOptimize(tmp.data());
  });
  const double lwts_enc = measure_mbps(bytes, [&] {
    lwts::encode_int_array_into(values, tmp);
    benchmark::DoNotOptimize(tmp.data());
  });
  std::printf("\n  shape checks:\n");
  std::printf("    hand-coded BER materially slower than copy (>2x): %s (%.1fx)\n",
              copy / ber_enc > 2 ? "HOLDS" : "FAILS", copy / ber_enc);
  std::printf("    toolkit BER slower than hand-coded BER: %s (%.1fx)\n",
              toolkit_enc < ber_enc ? "HOLDS" : "FAILS", ber_enc / toolkit_enc);
  // LWTS encode is a memcpy on like hosts and may legitimately beat the
  // unrolled copy kernel (libc memcpy vectorizes harder), so the ordering
  // claim is: tuned syntax ~ copy, then a strict slowdown ladder.
  std::printf("    ordering LWTS ~ copy >> BER > toolkit: %s\n",
              copy / lwts_enc < 3.0 && copy > 2 * ber_enc && ber_enc > toolkit_enc
                  ? "HOLDS"
                  : "FAILS");
  std::printf("    note: the 1990 4-5x copy/ASN.1 gap widens on modern hosts\n"
              "    because copy bandwidth grew ~1000x while the byte-serial\n"
              "    TLV conversion grew only with scalar IPC — the paper's\n"
              "    'presentation dominates' conclusion strengthens.\n");

  ngp::bench::JsonWriter e2;
  e2.field("copy_mbps", copy)
      .raw("syntaxes", syntaxes_json.str())
      .field("ber_slowdown_holds", copy / ber_enc > 2)
      .field("toolkit_slower_holds", toolkit_enc < ber_enc);
  ngp::bench::emit_json("E2_JSON", e2.str());
}

}  // namespace

int main(int argc, char** argv) {
  register_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_e2();
  return 0;
}
