// bench_presentation — reproduces E2 (§4): presentation conversion cost
// relative to a plain copy.
//
//   paper: word-aligned copy 130 Mb/s; hand-coded ASN.1 conversion of an
//   integer array 28 Mb/s — "a factor of 4-5 slower". The ISODE-style
//   generic path was far slower still (the other end of the §4 range).
//
// We measure encode and decode of a 32-bit integer array through every
// transfer syntax, against the copy baseline, and print the slowdown
// factors next to the paper's.
//
// Second act (DESIGN.md §13): the same Table-1 workload as a RecordSchema,
// decoded by the interpreted per-field codecs vs the compiled
// PresentationPlan, swept across every SIMD kernel tier this host
// supports. The headline HOLDS: compiled-plan decode beats interpreted
// BER by >= 3x at the best tier. `--smoke` runs the reduced sweep,
// self-checks byte-identical round-trips and the JSON schema, and exits
// non-zero if any HOLDS fails.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "ilp/kernels.h"
#include "presentation/ber.h"
#include "presentation/codec.h"
#include "presentation/lwts.h"
#include "presentation/plan.h"
#include "presentation/record.h"
#include "presentation/xdr.h"
#include "simd/dispatch.h"
#include "util/rng.h"

namespace {

using namespace ngp;

constexpr std::size_t kElems = 16384;  // 64 KB of integers

std::vector<std::int32_t> make_values() {
  std::vector<std::int32_t> v(kElems);
  Rng rng(0xCAFE);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.next());
  return v;
}

// ---- google-benchmark registrations ----------------------------------------------

void BM_EncodeSyntax(benchmark::State& state, TransferSyntax syntax) {
  auto values = make_values();
  for (auto _ : state) {
    ByteBuffer out = encode_int_array(syntax, values);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kElems * 4));
}

void BM_DecodeSyntax(benchmark::State& state, TransferSyntax syntax) {
  auto values = make_values();
  ByteBuffer enc = encode_int_array(syntax, values);
  for (auto _ : state) {
    auto out = decode_int_array(syntax, enc.span());
    benchmark::DoNotOptimize(out.ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kElems * 4));
}

void register_benches() {
  for (TransferSyntax s : {TransferSyntax::kRaw, TransferSyntax::kLwts,
                           TransferSyntax::kXdr, TransferSyntax::kBer,
                           TransferSyntax::kBerToolkit}) {
    const std::string enc_name = std::string("encode/") + std::string(transfer_syntax_name(s));
    const std::string dec_name = std::string("decode/") + std::string(transfer_syntax_name(s));
    benchmark::RegisterBenchmark(enc_name.c_str(),
                                 [s](benchmark::State& st) { BM_EncodeSyntax(st, s); });
    benchmark::RegisterBenchmark(dec_name.c_str(),
                                 [s](benchmark::State& st) { BM_DecodeSyntax(st, s); });
  }
}

// ---- Paper-style summary ----------------------------------------------------------

std::string print_e2(ngp::bench::BenchReport& rep) {
  using ngp::bench::measure_mbps;
  using ngp::bench::print_header;
  using ngp::bench::print_row;

  auto values = make_values();
  const std::size_t bytes = kElems * 4;
  ByteBuffer src(bytes), dst(bytes);
  Rng rng(1);
  rng.fill(src.span());

  const double copy = measure_mbps(bytes, [&] {
    copy_unrolled(src.span(), dst.span());
    benchmark::DoNotOptimize(dst.data());
  });

  print_header("E2 (paper §4): presentation conversion vs copy (encode side)");
  print_row("word-aligned copy (baseline)", copy);
  struct Row {
    TransferSyntax syntax;
    const char* note;
  };
  const Row rows[] = {
      {TransferSyntax::kLwts, "light-weight syntax [8]"},
      {TransferSyntax::kXdr, "Sun XDR [16]"},
      {TransferSyntax::kBer, "ASN.1 BER, hand-coded"},
      {TransferSyntax::kBerToolkit, "ASN.1 BER, prototype toolkit"},
  };
  // Steady-state encode: a reused scratch buffer, as a real datapath would
  // do (the one-shot API's allocation would otherwise dominate LWTS).
  auto encode_into = [&](TransferSyntax s, ByteBuffer& out) {
    switch (s) {
      case TransferSyntax::kLwts: lwts::encode_int_array_into(values, out); break;
      case TransferSyntax::kXdr: xdr::encode_int_array_into(values, out); break;
      case TransferSyntax::kBer: ber::encode_int_array_into(values, out); break;
      default: out = encode_int_array(s, values); break;
    }
  };
  ngp::bench::JsonWriter syntaxes_json;
  for (const auto& row : rows) {
    ByteBuffer out;
    const double enc = measure_mbps(bytes, [&] {
      encode_into(row.syntax, out);
      benchmark::DoNotOptimize(out.data());
    });
    std::printf("  %-28s %10.1f Mb/s   copy/this = %5.1fx   (%s)\n",
                std::string(transfer_syntax_name(row.syntax)).c_str(), enc,
                copy / enc, row.note);
    ByteBuffer enc_buf = encode_int_array(row.syntax, values);
    const double dec = measure_mbps(bytes, [&] {
      auto o = decode_int_array(row.syntax, enc_buf.span());
      benchmark::DoNotOptimize(o.ok());
    });
    syntaxes_json.raw(transfer_syntax_name(row.syntax),
                      ngp::bench::JsonWriter()
                          .field("encode_mbps", enc)
                          .field("decode_mbps", dec)
                          .field("copy_over_encode", copy / enc)
                          .str());
  }
  std::printf("  paper: copy 130 Mb/s, hand-coded ASN.1 28 Mb/s -> 4-5x slower\n");

  print_header("E2b: decode side");
  for (const auto& row : rows) {
    ByteBuffer enc_buf = encode_int_array(row.syntax, values);
    const double dec = measure_mbps(bytes, [&] {
      auto out = decode_int_array(row.syntax, enc_buf.span());
      benchmark::DoNotOptimize(out.ok());
    });
    std::printf("  %-28s %10.1f Mb/s   copy/this = %5.1fx\n",
                std::string(transfer_syntax_name(row.syntax)).c_str(), dec,
                copy / dec);
  }

  // Shape checks.
  ByteBuffer tmp;
  const double ber_enc = measure_mbps(bytes, [&] {
    ber::encode_int_array_into(values, tmp);
    benchmark::DoNotOptimize(tmp.data());
  });
  const double toolkit_enc = measure_mbps(bytes, [&] {
    tmp = encode_int_array(TransferSyntax::kBerToolkit, values);
    benchmark::DoNotOptimize(tmp.data());
  });
  const double lwts_enc = measure_mbps(bytes, [&] {
    lwts::encode_int_array_into(values, tmp);
    benchmark::DoNotOptimize(tmp.data());
  });
  std::printf("\n  shape checks:\n");
  std::printf("    hand-coded BER materially slower than copy (>2x): %s (%.1fx)\n",
              copy / ber_enc > 2 ? "HOLDS" : "FAILS", copy / ber_enc);
  std::printf("    toolkit BER slower than hand-coded BER: %s (%.1fx)\n",
              toolkit_enc < ber_enc ? "HOLDS" : "FAILS", ber_enc / toolkit_enc);
  // LWTS encode is a memcpy on like hosts and may legitimately beat the
  // unrolled copy kernel (libc memcpy vectorizes harder), so the ordering
  // claim is: tuned syntax ~ copy, then a strict slowdown ladder.
  std::printf("    ordering LWTS ~ copy >> BER > toolkit: %s\n",
              copy / lwts_enc < 3.0 && copy > 2 * ber_enc && ber_enc > toolkit_enc
                  ? "HOLDS"
                  : "FAILS");
  std::printf("    note: the 1990 4-5x copy/ASN.1 gap widens on modern hosts\n"
              "    because copy bandwidth grew ~1000x while the byte-serial\n"
              "    TLV conversion grew only with scalar IPC — the paper's\n"
              "    'presentation dominates' conclusion strengthens.\n");

  rep.metric("copy_mbps", copy)
      .metric("ber_encode_mbps", ber_enc)
      .metric("toolkit_encode_mbps", toolkit_enc)
      .tracked("copy_over_ber_encode", copy / ber_enc, /*higher=*/true, 0.5)
      .hold("ber_materially_slower_than_copy", copy / ber_enc > 2)
      .hold("toolkit_slower_than_hand_coded", toolkit_enc < ber_enc);

  ngp::bench::JsonWriter e2;
  e2.field("copy_mbps", copy)
      .raw("syntaxes", syntaxes_json.str())
      .field("ber_slowdown_holds", copy / ber_enc > 2)
      .field("toolkit_slower_holds", toolkit_enc < ber_enc);
  const std::string json = e2.str();
  ngp::bench::emit_json("E2_JSON", json);
  return json;
}

// ---- Compiled plans vs interpreters, per kernel tier (DESIGN.md §13) -------------
//
// The Table-1 workload as a record: one kInt32Array field, decoded through
// (a) the interpreted per-field codecs for BER / XDR / LWTS and (b) the
// compiled PresentationPlan for the flattenable syntaxes, the latter swept
// across every SIMD dispatch tier this host supports (the plan's var-array
// step calls the tiered byteswap32 kernel, so the tier moves compiled XDR
// throughput; the interpreter's per-element loop does not vectorize).
// Also measured: plan_decode_host_order, the load-only residue left after
// the §4 manipulation pass already swapped the buffer — the fused
// pipeline's fast path.
//
// Returns false if a self-check or the headline HOLDS fails.
bool print_plans(bool smoke, std::string* json_out,
                 ngp::bench::BenchReport& rep) {
  using ngp::bench::measure_mbps;
  using ngp::bench::print_header;
  using presentation::cached_plan;
  using presentation::plan_decode;
  using presentation::plan_decode_host_order;
  using presentation::plan_encode;

  const std::size_t elems = smoke ? 4096 : kElems;
  const std::size_t bytes = elems * 4;
  const RecordSchema schema{"table1", {FieldType::kInt32Array}};
  std::vector<std::int32_t> values(elems);
  Rng rng(0xCAFE);
  for (auto& x : values) x = static_cast<std::int32_t>(rng.next());
  Record record;
  record.emplace_back(std::move(values));

  bool ok = true;
  constexpr TransferSyntax kCompiled[] = {TransferSyntax::kLwts,
                                          TransferSyntax::kXdr};
  constexpr TransferSyntax kInterpreted[] = {TransferSyntax::kLwts,
                                             TransferSyntax::kXdr,
                                             TransferSyntax::kBer};

  // Self-check first (always, not just --smoke): the compiled plan must be
  // byte-identical to the interpreter before its throughput means anything.
  for (TransferSyntax s : kCompiled) {
    const auto plan = cached_plan(schema, s);
    if (!plan->compiled) {
      std::printf("  SELF-CHECK FAILS: %s plan not compiled\n",
                  std::string(transfer_syntax_name(s)).c_str());
      ok = false;
      continue;
    }
    auto fast = plan_encode(*plan, record);
    auto slow = encode_record_interpreted(s, schema, record);
    if (!fast.ok() || !slow.ok() || !(*fast == *slow)) {
      std::printf("  SELF-CHECK FAILS: %s plan_encode != interpreted bytes\n",
                  std::string(transfer_syntax_name(s)).c_str());
      ok = false;
      continue;
    }
    auto back = plan_decode(*plan, fast->span());
    if (!back.ok() || !(*back == record)) {
      std::printf("  SELF-CHECK FAILS: %s plan_decode round-trip\n",
                  std::string(transfer_syntax_name(s)).c_str());
      ok = false;
    }
  }

  // Interpreted decode per syntax — tier-independent (per-field scalar
  // loops), measured once at the production dispatch setting.
  struct InterpRow {
    TransferSyntax syntax;
    double encode, decode;
  };
  std::vector<InterpRow> interp;
  double interpreted_ber_decode = 0;
  for (TransferSyntax s : kInterpreted) {
    auto wire = encode_record_interpreted(s, schema, record);
    if (!wire.ok()) return false;
    InterpRow r{s, 0, 0};
    r.encode = measure_mbps(bytes, [&] {
      auto out = encode_record_interpreted(s, schema, record);
      benchmark::DoNotOptimize(out.ok());
    });
    r.decode = measure_mbps(bytes, [&] {
      auto out = decode_record_interpreted(s, schema, wire->span());
      benchmark::DoNotOptimize(out.ok());
    });
    if (s == TransferSyntax::kBer) interpreted_ber_decode = r.decode;
    interp.push_back(r);
  }

  // Compiled plans, per tier.
  struct TierRow {
    simd::KernelTier tier;
    double decode, host_order;
  };
  struct PlanRows {
    TransferSyntax syntax;
    double encode = 0;
    std::vector<TierRow> tiers;
  };
  std::vector<PlanRows> plans;
  const simd::KernelTier saved = simd::active_tier();
  double best_plan_decode = 0;
  for (TransferSyntax s : kCompiled) {
    const auto plan = cached_plan(schema, s);
    auto wire = plan_encode(*plan, record);
    if (!wire.ok()) return false;
    // Host-order image: what the fused manipulation pass hands the app —
    // the wire bytes with the plan's present stage already applied.
    ByteBuffer host(*wire);
    if (plan->wire_stage() == PresentStage::kSwap32) {
      simd::kernels().byteswap32(host.span());
    }
    PlanRows p{s, 0, {}};
    p.encode = measure_mbps(bytes, [&] {
      auto out = plan_encode(*plan, record);
      benchmark::DoNotOptimize(out.ok());
    });
    for (std::size_t t = 0; t < simd::kKernelTierCount; ++t) {
      const auto tier = static_cast<simd::KernelTier>(t);
      if (simd::tier_table(tier) == nullptr) continue;  // unsupported host
      simd::set_active_tier(tier);
      TierRow r{tier, 0, 0};
      r.decode = measure_mbps(bytes, [&] {
        auto out = plan_decode(*plan, wire->span());
        benchmark::DoNotOptimize(out.ok());
      });
      r.host_order = measure_mbps(bytes, [&] {
        auto out = plan_decode_host_order(*plan, host.span());
        benchmark::DoNotOptimize(out.ok());
      });
      if (tier == simd::best_tier() && r.decode > best_plan_decode) {
        best_plan_decode = r.decode;
      }
      p.tiers.push_back(r);
    }
    simd::set_active_tier(saved);
    plans.push_back(std::move(p));
  }

  print_header("Compiled plans (§13): Table-1 int-array record decode, Mb/s");
  for (const auto& r : interp) {
    std::printf("  interpreted %-10s  encode %10.1f   decode %10.1f\n",
                std::string(transfer_syntax_name(r.syntax)).c_str(), r.encode,
                r.decode);
  }
  for (const auto& p : plans) {
    for (const auto& t : p.tiers) {
      std::printf("  plan %-10s/%-6s  decode %10.1f   host-order %10.1f\n",
                  std::string(transfer_syntax_name(p.syntax)).c_str(),
                  simd::tier_name(t.tier), t.decode, t.host_order);
    }
  }

  const double speedup =
      interpreted_ber_decode > 0 ? best_plan_decode / interpreted_ber_decode : 0;
  const bool holds = speedup >= 3.0;
  std::printf("  best-tier compiled decode vs interpreted BER: %.1fx\n", speedup);
  std::printf("  shape check: compiled plan >= 3x interpreted BER -> %s\n",
              holds ? "HOLDS" : "FAILS");
  if (!holds) ok = false;

  ngp::bench::JsonWriter syntaxes;
  for (const auto& r : interp) {
    ngp::bench::JsonWriter row;
    row.field("interpreted_encode_mbps", r.encode)
        .field("interpreted_decode_mbps", r.decode);
    for (const auto& p : plans) {
      if (p.syntax != r.syntax) continue;
      std::string tiers;
      for (std::size_t i = 0; i < p.tiers.size(); ++i) {
        tiers += (i ? "," : "") +
                 ngp::bench::JsonWriter()
                     .field("tier", simd::tier_name(p.tiers[i].tier))
                     .field("plan_decode_mbps", p.tiers[i].decode)
                     .field("plan_host_order_mbps", p.tiers[i].host_order)
                     .str();
      }
      row.field("plan_encode_mbps", p.encode).raw("tiers", "[" + tiers + "]");
    }
    syntaxes.raw(transfer_syntax_name(r.syntax), row.str());
  }
  const std::string json =
      ngp::bench::JsonWriter()
          .field("elems", elems)
          .field("bytes", bytes)
          .field("smoke", smoke)
          .field("best_tier", simd::tier_name(simd::best_tier()))
          .raw("syntaxes", syntaxes.str())
          .field("interpreted_ber_decode_mbps", interpreted_ber_decode)
          .field("best_plan_decode_mbps", best_plan_decode)
          .field("speedup_vs_interpreted_ber", speedup)
          .field("holds", holds)
          .str();
  ngp::bench::emit_json("PRESENTATION_JSON", json);
  if (json_out != nullptr) *json_out = json;

  rep.metric("interpreted_ber_decode_mbps", interpreted_ber_decode)
      .metric("best_plan_decode_mbps", best_plan_decode)
      .tracked("speedup_vs_interpreted_ber", speedup, /*higher=*/true, 0.5)
      .hold("compiled_plan_3x_interpreted_ber", holds);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const ngp::bench::Args args = ngp::bench::parse_args(&argc, argv);
  if (!args.smoke) {
    register_benches();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  ngp::bench::BenchReport rep("presentation", args);
  const std::string e2_json = print_e2(rep);
  std::string plans_json;
  const bool plans_ok = print_plans(args.smoke, &plans_json, rep);
  if (args.smoke) {
    // Smoke self-check: both JSON records parse, and every HOLDS held.
    if (!ngp::bench::json_well_formed(e2_json) ||
        !ngp::bench::json_well_formed(plans_json)) {
      std::printf("SMOKE: malformed JSON output\n");
      return 1;
    }
    if (!plans_ok) {
      std::printf("SMOKE: compiled-plan self-check or HOLDS failed\n");
      return 1;
    }
    std::printf("SMOKE: ok\n");
  }
  if (!rep.emit("PRESENTATION_REPORT_JSON")) return 1;
  return 0;
}
