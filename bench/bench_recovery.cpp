// bench_recovery — E10: the self-healing session plane under path kills.
//
// Four scenarios over the same paced ALF transfer (DESIGN.md §10):
//
//   fault-free   supervised stack, clean path: the goodput yardstick.
//   path kill    a mid-transfer outage that outlasts the stall watchdog.
//                Run twice: a bare AlfSender/AlfReceiver pair (terminal
//                watchdog failure — the pre-§10 behaviour) and a
//                SessionSupervisor (epoch bump + delta RESUME, transfer
//                completes). Reports goodput and time-to-recover.
//   breaker      the same kill behind a SwitchingPath with a clean
//                alternate: the circuit breaker fails over in a few poll
//                intervals, pre-empting the watchdog entirely (zero
//                restarts).
//   overload     a blackholing path piles up incomplete ADUs; the receiver
//                sheds lowest-priority reassembly state at the high-water
//                mark instead of stalling or failing.
//
// HOLDS self-checks (exit non-zero on violation):
//   * the unsupervised baseline fails terminally on the kill storm;
//   * the supervised stack completes it, byte-complete;
//   * supervised goodput >= 70% of fault-free (full mode; the smoke file is
//     too small to amortize one watchdog round-trip, so smoke reports the
//     ratio without gating on it);
//   * time-to-recover (outage end -> supervisor back to running) <= 1s;
//   * the breaker run completes with zero supervisor restarts;
//   * shedding fires under overload, the session still ends decisively,
//     and every shed ADU was low-priority.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "netsim/fault.h"
#include "netsim/link.h"
#include "resilience/breaker.h"
#include "resilience/supervisor.h"
#include "sessiond/sessiond.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace ngp;

constexpr double kLinkBps = 50e6;
constexpr std::size_t kAduSize = 8000;
constexpr SimDuration kRunCap = 120 * kSecond;

std::size_t file_bytes(bool smoke) { return smoke ? (1u << 21) : (16u << 20); }

constexpr std::size_t kFeedChunk = 32;               // ADUs per feed tick
constexpr SimDuration kFeedTick = 40 * kMillisecond;  // ~51 Mb/s offered

LinkConfig data_link() {
  LinkConfig cfg;
  cfg.bandwidth_bps = kLinkBps;
  cfg.propagation_delay = 2 * kMillisecond;
  cfg.queue_limit = 1 << 16;
  return cfg;
}

// Unpaced: the whole file is staged at once and the link's serializer
// paces the wire (the idiom every bench here uses — sender-side pacing
// would entangle the measurement with the PROGRESS rate-adaptation loop).
alf::SessionConfig session_config() {
  auto cfg = alf::SessionConfig::builder()
                 .nack_delay(10 * kMillisecond)
                 .nack_retry(20 * kMillisecond)
                 .max_nacks(30)
                 .stall_timeout(300 * kMillisecond)
                 .adu_id_window(8192)
                 .build();
  if (!cfg.ok()) std::abort();
  return cfg.value();
}

resilience::SupervisorConfig supervisor_config(std::uint64_t seed) {
  resilience::SupervisorConfig cfg;
  cfg.session = session_config();
  cfg.seed = seed;
  cfg.max_restarts = 8;
  // Long enough that the first restart's re-stage burst goes out after the
  // 400ms kill window has closed (watchdog fires ~300ms into it): riding
  // out the fault in backoff is what backoff is for. Jitter is additive,
  // so the base is a guaranteed minimum.
  cfg.restart_backoff = 150 * kMillisecond;
  cfg.max_resume_retries = 30;
  return cfg;
}

struct RunResult {
  bool completed = false;
  bool failed = false;          ///< terminal failure (watchdog / permanent)
  double completion_s = 0;
  double goodput_mbps = 0;
  std::uint64_t delivered = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t adus_resent = 0;
  std::uint64_t adus_resume_skipped = 0;
  std::uint64_t adus_shed = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_failovers = 0;
  std::uint64_t lost_low_priority = 0;
  std::uint64_t lost_high_priority = 0;
  double time_to_recover_s = -1;  ///< outage end -> back to running; -1 = n/a
};

void finish_result(RunResult& r, SimTime done_at) {
  r.completion_s = to_seconds(r.completed ? done_at : kRunCap);
  r.goodput_mbps = megabits_per_second(r.delivered_bytes, r.completion_s);
}

/// Offers the whole file as fixed-size ADUs (ids 1..N) in one burst.
template <typename SendFn>
void offer_file(std::size_t bytes, SendFn&& send) {
  Rng rng(1);
  std::uint64_t id = 1;
  for (std::size_t off = 0; off < bytes; off += kAduSize, ++id) {
    const std::size_t len = std::min(kAduSize, bytes - off);
    ByteBuffer b(len);
    rng.fill(b.span());
    send(id, b);
  }
}

/// App-paced feeder: offers kFeedChunk ADUs every kFeedTick (slightly above
/// the link rate) and finishes after the last one. Gradual offering keeps
/// the link queue shallow — a whole-file burst would leave seconds of
/// stale-epoch backlog in front of every post-restart retransmission,
/// which no amount of supervision can pay for. `send` returns false to
/// stop feeding (terminal failure). Returns the feeder to keep alive.
struct Feeder {
  std::function<void()> tick;
  std::uint64_t next_id = 1;
  Rng rng{1};
};

template <typename SendFn, typename FinishFn>
void start_feeder(Feeder& f, EventLoop& loop, std::size_t bytes, SendFn send,
                  FinishFn finish) {
  const std::uint64_t total = (bytes + kAduSize - 1) / kAduSize;
  f.tick = [&f, &loop, bytes, total, send, finish] {
    for (std::size_t i = 0; i < kFeedChunk && f.next_id <= total;
         ++i, ++f.next_id) {
      const std::size_t off = (f.next_id - 1) * kAduSize;
      const std::size_t len = std::min(kAduSize, bytes - off);
      ByteBuffer b(len);
      f.rng.fill(b.span());
      if (!send(f.next_id, b)) return;
    }
    if (f.next_id <= total) {
      loop.schedule_after(kFeedTick, [&f] { f.tick(); });
    } else {
      finish();
    }
  };
  f.tick();
}

/// Unsupervised endpoint pair over a faulty data path — the pre-§10 stack,
/// opened through the session plane (open() without supervision builds the
/// same bare AlfSender/AlfReceiver pair the hand-wired version did).
RunResult run_unsupervised(std::size_t bytes, FaultPlan plan) {
  EventLoop loop;
  DuplexChannel ch(loop, data_link(), data_link());
  LinkPath raw(ch.forward), fb_tx(ch.reverse), fb_rx(ch.reverse);
  FaultyPath data(loop, raw, std::move(plan));

  sessiond::Sessiond daemon(loop);
  auto opened = daemon.open(session_config(), {&data, &fb_tx, &fb_rx});
  if (!opened.ok()) std::abort();
  sessiond::SessionHandle& sess = opened.value();

  RunResult r;
  SimTime done_at = kRunCap;
  sess.set_on_adu([&](Adu&& a) {
    ++r.delivered;
    r.delivered_bytes += a.payload.size();
  });
  sess.set_on_complete([&] {
    r.completed = true;
    done_at = loop.now();
  });

  Feeder feeder;
  start_feeder(
      feeder, loop, bytes,
      [&](std::uint64_t id, const ByteBuffer& b) {
        return sess.send_adu(generic_name(id), b.span()).ok();
      },
      [&] { sess.finish(); });
  loop.run_until(kRunCap);

  r.failed = sess.receiver().failed() || sess.sender().failed();
  finish_result(r, done_at);
  return r;
}

/// Supervised transfer over `data`. `outage_end` (if >= 0) enables the
/// time-to-recover probe: a 5ms state poll records when the supervisor is
/// first back in kRunning after the path returns.
RunResult run_supervised(std::size_t bytes, EventLoop& loop, NetPath& data,
                         NetPath& fb_tx, NetPath& fb_rx,
                         resilience::SupervisorConfig scfg,
                         SimTime outage_end = -1,
                         resilience::SwitchingPath* breaker = nullptr) {
  // Supervision is an open()-time opt-in: the handle's callbacks forward to
  // the supervisor, so they survive restarts; supervisor-only probes (state,
  // restart stats) go through handle.supervisor().
  sessiond::Sessiond daemon(loop);
  sessiond::OpenOptions oopts;
  oopts.supervised = true;
  oopts.supervisor = scfg;
  auto opened = daemon.open(scfg.session, {&data, &fb_tx, &fb_rx}, oopts);
  if (!opened.ok()) std::abort();
  sessiond::SessionHandle& sess = opened.value();
  resilience::SessionSupervisor& sup = *sess.supervisor();

  RunResult r;
  SimTime done_at = kRunCap;
  sess.set_on_adu([&](Adu&& a) {
    ++r.delivered;
    r.delivered_bytes += a.payload.size();
  });
  sess.set_on_complete([&] {
    r.completed = true;
    done_at = loop.now();
  });
  sup.set_on_permanent_failure([&] { r.failed = true; });

  bool saw_recovery_gap = false;
  std::function<void()> probe = [&] {
    if (r.completed || r.failed) return;
    if (sup.state() != resilience::SupervisorState::kRunning) {
      saw_recovery_gap = true;
    } else if (saw_recovery_gap && r.time_to_recover_s < 0 &&
               loop.now() >= outage_end) {
      r.time_to_recover_s = to_seconds(loop.now() - outage_end);
    }
    loop.schedule_after(5 * kMillisecond, probe);
  };
  if (outage_end >= 0) probe();

  Feeder feeder;
  start_feeder(
      feeder, loop, bytes,
      [&](std::uint64_t id, const ByteBuffer& b) {
        return sess.send_adu(generic_name(id), b.span()).ok();
      },
      [&] { sess.finish(); });
  loop.run_until(kRunCap);

  r.restarts = sup.stats().restarts;
  r.adus_resent = sup.stats().adus_resent;
  r.adus_resume_skipped = sup.stats().adus_resume_skipped;
  if (breaker != nullptr) {
    r.breaker_trips = breaker->stats().trips;
    r.breaker_failovers = breaker->stats().failovers;
  }
  finish_result(r, done_at);
  return r;
}

RunResult run_fault_free(std::size_t bytes, std::uint64_t seed) {
  EventLoop loop;
  DuplexChannel ch(loop, data_link(), data_link());
  LinkPath data(ch.forward), fb_tx(ch.reverse), fb_rx(ch.reverse);
  return run_supervised(bytes, loop, data, fb_tx, fb_rx,
                        supervisor_config(seed));
}

/// The kill: dark from 1/4 of the nominal (link-limited) transfer time,
/// for long enough that the stall watchdog must fire. The burst is already
/// in the link queue by then, so the outage kills ARRIVALS — FaultyPath
/// drops frames surfacing during a dark window just as it drops sends.
std::pair<SimTime, SimDuration> kill_window(std::size_t bytes) {
  const auto nominal =
      static_cast<SimDuration>(static_cast<double>(bytes) * 8 / kLinkBps * kSecond);
  return {nominal / 4, 400 * kMillisecond};
}

RunResult run_kill_supervised(std::size_t bytes, std::uint64_t seed) {
  EventLoop loop;
  DuplexChannel ch(loop, data_link(), data_link());
  LinkPath raw(ch.forward), fb_tx(ch.reverse), fb_rx(ch.reverse);
  const auto [start, duration] = kill_window(bytes);
  FaultPlan plan;
  plan.seed = seed;
  plan.scheduled_outages.push_back({start, duration});
  FaultyPath data(loop, raw, std::move(plan));
  return run_supervised(bytes, loop, data, fb_tx, fb_rx,
                        supervisor_config(seed), start + duration);
}

RunResult run_kill_unsupervised(std::size_t bytes, std::uint64_t seed) {
  const auto [start, duration] = kill_window(bytes);
  FaultPlan plan;
  plan.seed = seed;
  plan.scheduled_outages.push_back({start, duration});
  return run_unsupervised(bytes, std::move(plan));
}

/// The same kill behind a circuit breaker with a clean alternate path: the
/// kill lasts the whole run; only failover can finish the transfer.
RunResult run_breaker(std::size_t bytes, std::uint64_t seed) {
  EventLoop loop;
  LinkConfig link = data_link();
  DuplexChannel ch_a(loop, link, link);
  DuplexChannel ch_b(loop, link, link);

  LinkPath raw_a(ch_a.forward);
  const auto [start, duration] = kill_window(bytes);
  (void)duration;
  FaultPlan plan_a;
  plan_a.seed = seed;
  plan_a.scheduled_outages.push_back({start, kRunCap});
  FaultyPath path_a(loop, raw_a, std::move(plan_a));

  LinkPath raw_b(ch_b.forward);
  FaultPlan plan_b;
  plan_b.seed = seed + 1;  // fault-free; supplies offered/delivered counters
  FaultyPath path_b(loop, raw_b, std::move(plan_b));

  resilience::BreakerConfig bcfg;
  bcfg.poll_interval = 20 * kMillisecond;
  bcfg.min_polls = 3;
  resilience::SwitchingPath sw(loop, bcfg);
  sw.add_path(path_a, [&path_a] {
    return resilience::PathSample{path_a.stats().frames_offered,
                                  path_a.stats().frames_delivered};
  });
  sw.add_path(path_b, [&path_b] {
    return resilience::PathSample{path_b.stats().frames_offered,
                                  path_b.stats().frames_delivered};
  });
  sw.set_probe([](std::uint32_t seq) {
    alf::ProbeMessage p;
    p.session = 1;
    p.seq = seq;
    return alf::encode_probe(p);
  });
  sw.start();

  LinkPath fb_tx(ch_a.reverse), fb_rx(ch_a.reverse);
  return run_supervised(bytes, loop, sw, fb_tx, fb_rx,
                        supervisor_config(seed), /*outage_end=*/-1, &sw);
}

/// Overload: a blackholing path leaves holes in many ADUs at once, piling
/// up partial reassembly state. A low high-water mark forces the receiver
/// to shed — by priority — instead of growing without bound. Odd ids are
/// marked low-priority; even ids must survive.
RunResult run_overload(std::size_t bytes, std::uint64_t seed) {
  EventLoop loop;
  DuplexChannel ch(loop, data_link(), data_link());
  LinkPath raw(ch.forward), fb_tx(ch.reverse), fb_rx(ch.reverse);
  FaultPlan plan;
  plan.seed = seed;
  plan.blackhole_rate = 0.25;
  FaultyPath data(loop, raw, std::move(plan));

  resilience::SupervisorConfig scfg = supervisor_config(seed);
  // The burst puts the whole file in flight at once, so every blackholed
  // fragment leaves another partial ADU in reassembly — the memory pressure
  // that crosses the high-water mark. The NACK budget stays generous so
  // shedding, not retry exhaustion, decides which ADUs are lost. One ADU
  // in eight is high-priority; their combined footprint (bytes/8) sits
  // safely below the low-water mark, so a correct lowest-priority-first
  // policy never needs to touch them.
  scfg.session.shed_highwater = bytes / 3;
  scfg.session.shed_lowwater = bytes / 5;
  sessiond::Sessiond daemon(loop);
  sessiond::OpenOptions oopts;
  oopts.supervised = true;
  oopts.supervisor = scfg;
  auto opened = daemon.open(scfg.session, {&data, &fb_tx, &fb_rx}, oopts);
  if (!opened.ok()) std::abort();
  sessiond::SessionHandle& sess = opened.value();
  sess.set_priority(
      [](const AduName& n) { return (n.a % 8 == 0) ? 5 : 1; });

  RunResult r;
  SimTime done_at = kRunCap;
  sess.set_on_adu([&](Adu&& a) {
    ++r.delivered;
    r.delivered_bytes += a.payload.size();
  });
  sess.set_on_complete([&] {
    r.completed = true;
    done_at = loop.now();
  });
  sess.supervisor()->set_on_permanent_failure([&] { r.failed = true; });
  sess.set_on_adu_lost([&](std::uint32_t, const AduName& n, bool) {
    ++(n.a % 8 == 0 ? r.lost_high_priority : r.lost_low_priority);
  });

  offer_file(bytes, [&](std::uint64_t id, const ByteBuffer& b) {
    if (!sess.send_adu(generic_name(id), b.span()).ok()) std::abort();
  });
  sess.finish();
  loop.run_until(kRunCap);

  r.restarts = sess.supervisor()->stats().restarts;
  r.adus_shed = sess.receiver().stats().adus_shed;
  finish_result(r, done_at);
  return r;
}

void print_result(const char* label, const RunResult& r) {
  const char* end = r.completed ? "complete" : (r.failed ? "FAILED" : "DNF");
  std::printf("%12s | %8.3f %8.1f %9s | restarts %llu resent %llu shed %llu",
              label, r.completion_s, r.goodput_mbps, end,
              static_cast<unsigned long long>(r.restarts),
              static_cast<unsigned long long>(r.adus_resent),
              static_cast<unsigned long long>(r.adus_shed));
  if (r.time_to_recover_s >= 0) {
    std::printf(" ttr %.0fms", r.time_to_recover_s * 1e3);
  }
  if (r.breaker_trips > 0) {
    std::printf(" trips %llu failovers %llu",
                static_cast<unsigned long long>(r.breaker_trips),
                static_cast<unsigned long long>(r.breaker_failovers));
  }
  std::printf("\n");
}

std::string result_json(const char* name, const RunResult& r) {
  bench::JsonWriter w;
  w.field("scenario", name)
      .field("completed", r.completed)
      .field("failed", r.failed)
      .field("completion_s", r.completion_s)
      .field("goodput_mbps", r.goodput_mbps)
      .field("delivered", r.delivered)
      .field("restarts", r.restarts)
      .field("adus_resent", r.adus_resent)
      .field("adus_resume_skipped", r.adus_resume_skipped)
      .field("adus_shed", r.adus_shed)
      .field("breaker_trips", r.breaker_trips)
      .field("breaker_failovers", r.breaker_failovers)
      .field("time_to_recover_s", r.time_to_recover_s);
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(&argc, argv);
  const std::uint64_t seed = args.seed;
  const std::size_t bytes = file_bytes(args.smoke);
  const std::uint64_t total_adus = (bytes + kAduSize - 1) / kAduSize;

  std::printf("=== E10: self-healing session plane (supervised recovery) ===\n");
  std::printf("file %zu bytes (%llu ADUs), link %.0f Mb/s, seed %llu%s\n\n",
              bytes, static_cast<unsigned long long>(total_adus), kLinkBps / 1e6,
              static_cast<unsigned long long>(seed),
              args.smoke ? ", SMOKE" : "");
  std::printf("%12s | %8s %8s %9s | recovery\n", "scenario", "time(s)", "Mb/s",
              "end");

  const RunResult base = run_fault_free(bytes, seed);
  print_result("fault-free", base);
  const RunResult kill_un = run_kill_unsupervised(bytes, seed);
  print_result("kill (bare)", kill_un);
  const RunResult kill_sup = run_kill_supervised(bytes, seed);
  print_result("kill (sup)", kill_sup);
  const RunResult brk = run_breaker(bytes, seed);
  print_result("breaker", brk);
  const RunResult shed = run_overload(bytes, seed);
  print_result("overload", shed);

  const double goodput_ratio =
      base.goodput_mbps > 0 ? kill_sup.goodput_mbps / base.goodput_mbps : 0;

  // HOLDS: the properties the paper-reproduction claims rest on.
  struct Hold {
    const char* name;
    bool ok;
  };
  std::vector<Hold> holds;
  holds.push_back({"baseline_fails_terminally", !kill_un.completed && kill_un.failed});
  holds.push_back({"supervised_completes",
                   kill_sup.completed && kill_sup.delivered == total_adus});
  holds.push_back({"supervised_goodput_70pct",
                   args.smoke || goodput_ratio >= 0.70});
  holds.push_back({"time_to_recover_1s",
                   kill_sup.time_to_recover_s >= 0 &&
                       kill_sup.time_to_recover_s <= 1.0});
  holds.push_back({"breaker_avoids_restart",
                   brk.completed && brk.restarts == 0 && brk.breaker_trips >= 1});
  holds.push_back({"shedding_is_priority_aware",
                   !shed.failed && shed.adus_shed > 0 &&
                       shed.lost_high_priority == 0});

  bool all_ok = true;
  std::printf("\nHOLDS:\n");
  for (const Hold& h : holds) {
    std::printf("  %-28s %s\n", h.name, h.ok ? "ok" : "VIOLATED");
    all_ok = all_ok && h.ok;
  }
  std::printf("\nshape check: supervision turns a terminal mid-transfer path kill\n"
              "into one recovered epoch (goodput ratio %.2f vs fault-free), and a\n"
              "breaker with an alternate path avoids the watchdog entirely.\n",
              goodput_ratio);

  std::string scenarios;
  for (const auto& [name, r] :
       std::initializer_list<std::pair<const char*, const RunResult*>>{
           {"fault_free", &base},
           {"kill_unsupervised", &kill_un},
           {"kill_supervised", &kill_sup},
           {"breaker", &brk},
           {"overload", &shed}}) {
    if (!scenarios.empty()) scenarios += ',';
    scenarios += result_json(name, *r);
  }
  std::string holds_json;
  for (const Hold& h : holds) {
    if (!holds_json.empty()) holds_json += ',';
    bench::JsonWriter w;
    holds_json += w.field("name", h.name).field("ok", h.ok).str();
  }
  bench::JsonWriter top;
  top.field("seed", seed)
      .field("smoke", args.smoke)
      .field("file_bytes", static_cast<std::uint64_t>(bytes))
      .field("goodput_ratio", goodput_ratio)
      .raw("scenarios", "[" + scenarios + "]")
      .raw("holds", "[" + holds_json + "]")
      .field("all_holds_ok", all_ok);
  const std::string json = top.str();
  if (!bench::json_well_formed(json)) {
    std::fprintf(stderr, "bench_recovery: malformed RECOVERY_JSON\n");
    return 1;
  }
  bench::emit_json("RECOVERY_JSON", json);

  bench::BenchReport rep("recovery", args);
  rep.tracked("goodput_ratio", goodput_ratio, /*higher=*/true, 0.25)
      .tracked("supervised_delivered", kill_sup.delivered, /*higher=*/true, 0.0)
      .metric("fault_free_mbps", base.goodput_mbps)
      .metric("supervised_mbps", kill_sup.goodput_mbps)
      .metric("time_to_recover_s", kill_sup.time_to_recover_s)
      .metric("breaker_trips", brk.breaker_trips)
      .metric("adus_shed", shed.adus_shed);
  for (const Hold& h : holds) rep.hold(h.name, h.ok);
  rep.detail("scenarios", "[" + scenarios + "]");
  if (!rep.emit("RECOVERY_REPORT_JSON")) return 1;
  return all_ok ? 0 : 1;
}
