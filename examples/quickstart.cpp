// quickstart — the smallest complete ngp program.
//
// Sends ten named ADUs across a lossy simulated link and prints them as
// they complete at the receiver. Run it and watch the delivery order: ADUs
// behind a lost packet arrive LATER, but nothing waits for them — that is
// Application Level Framing in one screen of code.
//
//   $ ./quickstart
#include <cstdio>

#include "netsim/net_path.h"
#include "sessiond/sessiond.h"

using namespace ngp;

int main() {
  // 1. A simulated network: 10 Mb/s, 5 ms propagation, 5% packet loss.
  EventLoop loop;
  LinkConfig cfg;
  cfg.bandwidth_bps = 10e6;
  cfg.propagation_delay = 5 * kMillisecond;
  cfg.seed = 2026;
  DuplexChannel channel(loop, cfg);
  channel.forward.set_loss_rate(0.05);

  LinkPath data(channel.forward);          // fragments flow forward
  LinkPath feedback_tx(channel.reverse);   // NACK/progress flow back
  LinkPath feedback_rx(channel.reverse);

  // 2. One ALF association, opened through the session plane. The builder
  //    validates the config at build() — a malformed session fails here,
  //    not as a misbehaving endpoint.
  sessiond::Sessiond daemon(loop);
  auto session = alf::SessionConfig::builder()
                     .retransmit(alf::RetransmitPolicy::kTransportBuffered)
                     .build();
  if (!session.ok()) {
    std::printf("bad config: %s\n", session.error().to_string().c_str());
    return 1;
  }
  auto handle = daemon.open(session.value(),
                            {&data, &feedback_tx, &feedback_rx});
  if (!handle.ok()) {
    std::printf("open failed: %s\n", handle.error().to_string().c_str());
    return 1;
  }
  sessiond::SessionHandle& s = handle.value();

  // 3. The receiver gets COMPLETE ADUs the moment they finish, in whatever
  //    order the network permits.
  s.set_on_adu([&](Adu&& adu) {
    std::printf("t=%-10s delivered %-14s (%zu bytes)\n",
                format_sim_time(loop.now()).c_str(), adu.name.to_string().c_str(),
                adu.payload.size());
  });
  s.set_on_complete([&] {
    std::printf("t=%-10s transfer complete\n", format_sim_time(loop.now()).c_str());
  });

  // 4. Send ten ADUs, each individually named by the application.
  ByteBuffer payload(4000);
  for (std::uint64_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < payload.size(); ++j) {
      payload[j] = static_cast<std::uint8_t>(i);
    }
    if (auto r = s.send_adu(generic_name(i), payload.span()); !r.ok()) {
      std::printf("send failed: %s\n", r.error().to_string().c_str());
      return 1;
    }
  }
  s.finish();

  // 5. Run the simulation to completion. The handle closes the session
  //    when it goes out of scope.
  loop.run();

  std::printf("\nsender:   %llu fragments, %llu ADU retransmissions\n",
              static_cast<unsigned long long>(s.sender().stats().fragments_sent),
              static_cast<unsigned long long>(
                  s.sender().stats().adus_retransmitted));
  std::printf("receiver: %llu ADUs, %llu delivered out of order, %llu NACKs sent\n",
              static_cast<unsigned long long>(s.receiver().stats().adus_delivered),
              static_cast<unsigned long long>(
                  s.receiver().stats().adus_delivered_out_of_order),
              static_cast<unsigned long long>(s.receiver().stats().nacks_sent));
  return 0;
}
