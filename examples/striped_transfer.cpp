// striped_transfer — §7's parallel-processor scenario.
//
// "One of the design goals of a parallel processor is to avoid building
// any one hot spot which must run at the aggregate speed of the total
// processor... The solution seems to be to separate the network into
// several parts, each of which delivers part of the data to part of the
// processor... if the data is organized into ADUs, each ADU will contain
// enough information to control its own delivery."
//
// This example stripes a 4 MB transfer across 4 independent 25 Mb/s lanes
// (aggregate 100 Mb/s). Each lane terminates at a different "node" of the
// receiving parallel machine; every node places its ADUs directly into the
// shared file image using only the names the ADUs carry. No node ever
// coordinates with another.
//
//   $ ./striped_transfer [lanes]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "alf/file_sink.h"
#include "alf/striper.h"
#include "netsim/net_path.h"
#include "sessiond/sessiond.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace ngp;

int main(int argc, char** argv) {
  const std::size_t lanes = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  constexpr std::size_t kFile = 4 << 20, kAdu = 8192;
  constexpr double kLaneBps = 25e6;

  std::printf("striping %zu MB over %zu lanes of %.0f Mb/s (aggregate %.0f Mb/s)\n",
              kFile >> 20, lanes, kLaneBps / 1e6,
              kLaneBps * static_cast<double>(lanes) / 1e6);

  EventLoop loop;
  sessiond::Sessiond daemon(loop);
  std::vector<std::unique_ptr<DuplexChannel>> channels;
  std::vector<std::unique_ptr<LinkPath>> paths;
  std::vector<sessiond::SessionHandle> lanes_open;
  std::vector<alf::AlfSender*> tx;
  std::vector<alf::AlfReceiver*> rx;

  for (std::size_t i = 0; i < lanes; ++i) {
    LinkConfig cfg;
    cfg.bandwidth_bps = kLaneBps;
    cfg.propagation_delay = 3 * kMillisecond;
    cfg.queue_limit = 1 << 16;
    cfg.seed = 1000 + i;
    channels.push_back(std::make_unique<DuplexChannel>(loop, cfg));
    channels.back()->forward.set_loss_rate(0.01);
    auto& ch = *channels.back();

    paths.push_back(std::make_unique<LinkPath>(ch.forward));
    LinkPath* data = paths.back().get();
    paths.push_back(std::make_unique<LinkPath>(ch.reverse));
    LinkPath* fb_tx = paths.back().get();
    paths.push_back(std::make_unique<LinkPath>(ch.reverse));
    LinkPath* fb_rx = paths.back().get();

    // One association per lane, each its own session id — every lane is an
    // independent flow in the session plane.
    auto session = alf::SessionConfig::builder()
                       .session_id(static_cast<std::uint16_t>(i + 1))
                       .nack_delay(15 * kMillisecond)
                       .build();
    auto handle = daemon.open(session.value(), {data, fb_tx, fb_rx});
    if (!handle.ok()) {
      std::printf("lane %zu: open failed: %s\n", i,
                  handle.error().to_string().c_str());
      return 1;
    }
    lanes_open.push_back(std::move(handle.value()));
    tx.push_back(&lanes_open.back().sender());
    rx.push_back(&lanes_open.back().receiver());
  }

  alf::AlfStriper striper(tx);
  alf::StripeCollector collector(rx);

  // The shared file image plays the role of the parallel machine's
  // distributed memory: every node writes its share independently.
  alf::FileSink sink(kFile);
  std::vector<std::uint64_t> per_node_bytes(lanes, 0);
  collector.set_on_adu([&](std::size_t lane, Adu&& adu) {
    per_node_bytes[lane] += adu.payload.size();
    if (auto s = sink.place(adu); !s.is_ok()) {
      std::printf("node %zu: place failed: %s\n", lane, s.to_string().c_str());
    }
  });
  collector.set_on_complete([&] {
    std::printf("all nodes complete at t=%s\n", format_sim_time(loop.now()).c_str());
  });

  ByteBuffer file(kFile);
  Rng rng(0x51);
  rng.fill(file.span());
  for (std::size_t off = 0; off < kFile; off += kAdu) {
    const std::size_t len = std::min(kAdu, kFile - off);
    if (!striper.send_adu(FileRegionName{off, len}.to_name(),
                          file.span().subspan(off, len))
             .ok()) {
      std::printf("send failed at offset %zu\n", off);
      return 1;
    }
  }
  striper.finish();
  loop.run();

  const double secs = to_seconds(loop.now());
  std::printf("\ntransfer: %.3f s -> %.1f Mb/s aggregate goodput\n", secs,
              megabits_per_second(sink.bytes_placed(), secs));
  for (std::size_t i = 0; i < lanes; ++i) {
    std::printf("  node %zu received %6.2f%% of the file (%llu bytes)\n", i,
                100.0 * static_cast<double>(per_node_bytes[i]) / kFile,
                static_cast<unsigned long long>(per_node_bytes[i]));
  }
  std::printf("file intact: %s; out-of-order placements: %llu\n",
              ByteBuffer(sink.contents()) == file ? "yes" : "NO",
              static_cast<unsigned long long>(sink.out_of_order_placements()));
  return 0;
}
