// rpc — remote procedure call exercising the full ngp public API.
//
// The paper's RPC discussion (§5, §6): "the transferred data represents
// the arguments and results of a procedure call, and must be moved to the
// stack of the application process" — presentation conversion runs in
// application context, and each argument is naturally its own ADU, named
// (call id, argument index), unmarshalled in whatever order it arrives.
//
// This example uses every layer of the suite on ONE duplex channel:
//   1. FrameRouter demultiplexes the channel into handshake, data and
//      feedback planes for two sessions (calls and replies) — §3's
//      multiplexing function, full duplex;
//   2. HandshakeInitiator/Responder negotiate the transfer syntax
//      out-of-band (named by OBJECT IDENTIFIER, answered in BER);
//   3. RecordSchema-driven marshalling converts typed argument/result
//      records to the agreed syntax ("only the application knows what the
//      sequence of data items is", §5);
//   4. ALF carries each argument as its own named ADU over a lossy link.
//
//   $ ./rpc
#include <cstdio>
#include <map>
#include <memory>

#include "alf/negotiate.h"
#include "alf/router.h"
#include "presentation/record.h"
#include "sessiond/sessiond.h"
#include "util/rng.h"

using namespace ngp;

namespace {

constexpr std::uint16_t kCallSession = 1;
constexpr std::uint16_t kReplySession = 2;

/// The remote procedure: stats(vector<int32>) -> {count, sum, min, max}.
struct StatsResult {
  std::int64_t count = 0, sum = 0;
  std::int32_t min = 0, max = 0;
};

StatsResult compute_stats(const std::vector<std::int32_t>& v) {
  StatsResult r;
  r.count = static_cast<std::int64_t>(v.size());
  if (v.empty()) return r;
  r.min = r.max = v[0];
  for (std::int32_t x : v) {
    r.sum += x;
    r.min = std::min(r.min, x);
    r.max = std::max(r.max, x);
  }
  return r;
}

// The application's shared schemas (the abstract syntax both ends know).
const RecordSchema kCallSchema{"stats-call",
                               {FieldType::kInt32,       // procedure id
                                FieldType::kInt32Array}};// the vector argument
const RecordSchema kReplySchema{"stats-reply",
                                {FieldType::kInt64, FieldType::kInt64,
                                 FieldType::kInt32, FieldType::kInt32}};

}  // namespace

int main() {
  EventLoop loop;
  LinkConfig cfg;
  cfg.bandwidth_bps = 20e6;
  cfg.propagation_delay = 8 * kMillisecond;
  cfg.seed = 42;
  DuplexChannel ch(loop, cfg);
  ch.forward.set_loss_rate(0.05);
  ch.reverse.set_loss_rate(0.05);

  // One router per link end: server-bound frames arrive via forward,
  // client-bound frames via reverse.
  LinkPath fwd(ch.forward), rev(ch.reverse);
  alf::FrameRouter at_server(fwd);
  alf::FrameRouter at_client(rev);

  // ---- 1+2: negotiate the session out of band. The client offers XDR;
  // the server's capabilities decide.
  alf::Capabilities server_caps;  // defaults: raw/lwts/xdr/ber, no crypto
  alf::HandshakeResponder responder(loop, at_server.handshake_plane(),
                                    at_client.handshake_plane(), server_caps);
  alf::SessionConfig offer;
  offer.session_id = kCallSession;
  offer.syntax = TransferSyntax::kXdr;
  offer.checksum = ChecksumKind::kCrc32;
  alf::HandshakeInitiator initiator(loop, at_server.handshake_plane(),
                                    at_client.handshake_plane(), offer);

  // Both associations are opened through one session plane once the
  // handshake lands; each handle owns a sender/receiver pair.
  sessiond::Sessiond daemon(loop);
  sessiond::SessionHandle call_sess, reply_sess;
  TransferSyntax agreed_syntax = TransferSyntax::kRaw;
  Rng rng(7);
  std::vector<std::int32_t> values(1000);
  for (auto& v : values) v = static_cast<std::int32_t>(rng.uniform(20001)) - 10000;
  bool got_reply = false;
  StatsResult remote{};

  responder.set_on_session([&](const alf::SessionConfig& agreed) {
    std::printf("t=%-9s server: session accepted (syntax %s, checksum %s)\n",
                format_sim_time(loop.now()).c_str(),
                std::string(transfer_syntax_name(agreed.syntax)).c_str(),
                std::string(checksum_kind_name(agreed.checksum)).c_str());
    // The call association: the client transmits on the call-session data
    // plane, the server receives and NACKs back on its feedback plane. One
    // open() stands up both endpoints of the association.
    auto call = daemon.open(agreed, {&at_server.data_plane(kCallSession),
                                     &at_client.feedback_plane(kCallSession),
                                     &at_client.feedback_plane(kCallSession)});
    if (!call.ok()) {
      std::printf("server: open failed: %s\n", call.error().to_string().c_str());
      return;
    }
    call_sess = std::move(call.value());

    // The reply association runs the other way on its own session id.
    alf::SessionConfig reply_cfg = agreed;
    reply_cfg.session_id = kReplySession;
    auto reply = daemon.open(reply_cfg,
                             {&at_client.data_plane(kReplySession),
                              &at_server.feedback_plane(kReplySession),
                              &at_server.feedback_plane(kReplySession)});
    if (!reply.ok()) {
      std::printf("server: open failed: %s\n",
                  reply.error().to_string().c_str());
      return;
    }
    reply_sess = std::move(reply.value());

    call_sess.set_on_adu([&](Adu&& adu) {
      const auto arg = RpcArgName::from_name(adu.name);
      auto call = decode_record(adu.syntax, kCallSchema, adu.payload.span());
      if (!call.ok()) {
        std::printf("server: bad call encoding: %s\n", call.error().to_string().c_str());
        return;
      }
      const auto proc = std::get<std::int32_t>((*call)[0]);
      const auto& vec = std::get<std::vector<std::int32_t>>((*call)[1]);
      std::printf("t=%-9s server: call %llu proc %d with %zu elements\n",
                  format_sim_time(loop.now()).c_str(),
                  static_cast<unsigned long long>(arg.call_id), proc, vec.size());

      const StatsResult res = compute_stats(vec);
      Record reply{res.count, res.sum, res.min, res.max};
      auto wire = encode_record(adu.syntax, kReplySchema, reply);
      if (!wire.ok()) return;
      (void)reply_sess.send_adu(RpcArgName{arg.call_id, 0}.to_name(),
                                wire->span());
      reply_sess.finish();
    });
  });

  initiator.set_on_done([&](Result<alf::SessionConfig> agreed) {
    if (!agreed.ok()) {
      std::printf("client: handshake failed: %s\n", agreed.error().to_string().c_str());
      return;
    }
    agreed_syntax = agreed->syntax;
    std::printf("t=%-9s client: session agreed, issuing call\n",
                format_sim_time(loop.now()).c_str());
    reply_sess.set_on_adu([&](Adu&& adu) {
      auto reply = decode_record(adu.syntax, kReplySchema, adu.payload.span());
      if (!reply.ok()) {
        std::printf("client: bad reply: %s\n", reply.error().to_string().c_str());
        return;
      }
      remote.count = std::get<std::int64_t>((*reply)[0]);
      remote.sum = std::get<std::int64_t>((*reply)[1]);
      remote.min = std::get<std::int32_t>((*reply)[2]);
      remote.max = std::get<std::int32_t>((*reply)[3]);
      got_reply = true;
      std::printf("t=%-9s client: reply count=%lld sum=%lld min=%d max=%d\n",
                  format_sim_time(loop.now()).c_str(),
                  static_cast<long long>(remote.count),
                  static_cast<long long>(remote.sum), remote.min, remote.max);
    });

    // Marshal the call as one record ADU named (call 1, arg 0).
    Record call{std::int32_t{1}, values};
    auto wire = encode_record(agreed->syntax, kCallSchema, call);
    if (!wire.ok()) {
      std::printf("client: encode failed\n");
      return;
    }
    (void)call_sess.send_adu(RpcArgName{1, 0}.to_name(), wire->span());
    call_sess.finish();
  });

  initiator.start();
  loop.run();

  const StatsResult local = compute_stats(values);
  const bool match = got_reply && local.count == remote.count &&
                     local.sum == remote.sum && local.min == remote.min &&
                     local.max == remote.max;
  std::printf("\nlocal check: count=%lld sum=%lld min=%d max=%d -> %s\n",
              static_cast<long long>(local.count), static_cast<long long>(local.sum),
              local.min, local.max,
              match ? "RPC result matches" : "MISMATCH / NO REPLY");
  return match ? 0 : 1;
}
