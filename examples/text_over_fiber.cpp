// text_over_fiber — the remaining substrates in one program.
//
// A text document travels from A to B:
//
//   1. presentation: local ASCII -> network ASCII (footnote 1 of the
//      paper: "even a universal standard such as ASCII may require
//      reformatting" — and the conversion CHANGES SIZES, so the sender
//      names each ADU by its position in the receiver's converted file);
//   2. association: negotiated full-duplex ALF session (the responder
//      acknowledges receipt on the reverse direction of the same
//      association);
//   3. substrate: an UNFRAMED byte pipe (§5's WDM fiber, "need not
//      provide transmission framing at all") with bit corruption, made a
//      NetPath by the sync-hunting framing sublayer (§3's Framing
//      function).
//
//   $ ./text_over_fiber
#include <cstdio>
#include <memory>
#include <string>

#include "alf/association.h"
#include "alf/file_sink.h"
#include "netsim/framing.h"
#include "presentation/text.h"
#include "util/rng.h"

using namespace ngp;

namespace {

std::string make_document() {
  std::string doc;
  for (int line = 1; line <= 400; ++line) {
    doc += "line " + std::to_string(line) +
           ": application level framing means the application chooses the "
           "units of transfer, naming, and recovery.\n";
  }
  return doc;
}

}  // namespace

int main() {
  EventLoop loop;

  // Two unframed byte pipes (one per direction) with corruption on the
  // data direction, wrapped by framing into NetPaths.
  ByteStreamConfig fwd_cfg;
  fwd_cfg.bandwidth_bps = 20e6;
  fwd_cfg.propagation_delay = 4 * kMillisecond;
  fwd_cfg.bit_flip_rate = 0.0001;  // ~1 flip per 10 KB: several frames die
  fwd_cfg.seed = 1;
  ByteStreamConfig rev_cfg = fwd_cfg;
  rev_cfg.bit_flip_rate = 0;
  rev_cfg.seed = 2;
  ByteStreamLink fwd_pipe(loop, fwd_cfg);
  ByteStreamLink rev_pipe(loop, rev_cfg);
  FramedBytePath a_to_b(fwd_pipe, 4096);
  FramedBytePath b_to_a(rev_pipe, 4096);

  // Association over the framed fiber.
  auto receiver_side = alf::Association::listen(loop, b_to_a, a_to_b,
                                                alf::Capabilities{});
  // The association negotiates its own session in-band, so the offer is
  // built (and validated) with the same builder Sessiond::open users use.
  auto offer = alf::SessionConfig::builder()
                   .nack_delay(15 * kMillisecond)
                   .build();
  auto sender_side =
      alf::Association::initiate(loop, a_to_b, b_to_a, offer.value());

  // The document and its network form. Conversion changes the size, so
  // region names are computed in CONVERTED (receiver) coordinates — the
  // §5 rule that the sender must name ADUs in receiver-meaningful terms.
  const std::string local_doc = make_document();
  const ByteBuffer network_doc =
      text::to_network(ByteBuffer::from_string(local_doc).span());
  std::printf("document: %zu bytes local, %zu bytes in network form\n",
              local_doc.size(), network_doc.size());

  alf::FileSink sink(network_doc.size());
  bool all_received = false;
  receiver_side->set_on_adu([&](Adu&& adu) {
    if (auto s = sink.place(adu); !s.is_ok()) {
      std::printf("receiver: place failed: %s\n", s.to_string().c_str());
    }
  });
  receiver_side->set_on_peer_finished([&] {
    all_received = true;
    std::printf("t=%-9s receiver: document complete (%llu ADUs placed, %llu "
                "out of order)\n",
                format_sim_time(loop.now()).c_str(),
                static_cast<unsigned long long>(sink.adus_placed()),
                static_cast<unsigned long long>(sink.out_of_order_placements()));
    // Acknowledge at application level on the reverse direction.
    auto thanks = ByteBuffer::from_string("document received, thank you");
    (void)receiver_side->send_adu(generic_name(1), thanks.span());
    receiver_side->finish();
  });

  bool acked = false;
  sender_side->set_on_adu([&](Adu&& adu) {
    std::printf("t=%-9s sender: peer says \"%.*s\"\n",
                format_sim_time(loop.now()).c_str(),
                static_cast<int>(adu.payload.size()),
                reinterpret_cast<const char*>(adu.payload.data()));
    acked = true;
  });

  sender_side->set_on_established([&](Result<alf::SessionConfig> r) {
    if (!r.ok()) {
      std::printf("handshake failed: %s\n", r.error().to_string().c_str());
      return;
    }
    std::printf("t=%-9s sender: session up, streaming document\n",
                format_sim_time(loop.now()).c_str());
    constexpr std::size_t kAdu = 2000;
    for (std::size_t off = 0; off < network_doc.size(); off += kAdu) {
      const std::size_t len = std::min(kAdu, network_doc.size() - off);
      auto name = FileRegionName{off, len}.to_name();
      if (!sender_side->send_adu(name, network_doc.subspan(off, len)).ok()) {
        std::printf("send failed at %zu\n", off);
        return;
      }
    }
    sender_side->finish();
  });

  loop.run();

  // Convert back to local form and verify.
  const ByteBuffer back = text::from_network(sink.contents());
  const bool intact = all_received &&
                      back == ByteBuffer::from_string(local_doc) && acked;
  std::printf("\nframing: %llu frames delivered, %llu damaged+dropped, %llu "
              "resync slides\n",
              static_cast<unsigned long long>(a_to_b.stats().frames_delivered),
              static_cast<unsigned long long>(a_to_b.stats().crc_rejects),
              static_cast<unsigned long long>(a_to_b.stats().resync_slides));
  std::printf("pipe: %llu bytes corrupted in flight\n",
              static_cast<unsigned long long>(fwd_pipe.stats().bytes_corrupted));
  std::printf("round trip local->network->local intact: %s\n",
              intact ? "yes" : "NO");
  return intact ? 0 : 1;
}
