// video_stream — the paper's real-time media scenario (§5).
//
// A video source streams tiled frames over a lossy link in real time. The
// application chose RetransmitPolicy::kNone: "the application accepts less
// than perfect delivery and continues unchecked." Every tile ADU is named
// in space (tile x,y) and time (frame number, timestamp), so the receiver
// renders each frame at its playout deadline with whatever tiles arrived,
// concealing the rest from the previous frame.
//
//   $ ./video_stream [loss_percent] [seconds]
#include <cstdio>
#include <cstdlib>

#include "alf/jitter.h"
#include "alf/video_sink.h"
#include "netsim/net_path.h"
#include "sessiond/sessiond.h"
#include "util/rng.h"

using namespace ngp;

namespace {

constexpr std::uint16_t kTilesX = 8, kTilesY = 6;    // 48 tiles/frame
constexpr std::size_t kTileBytes = 1024;             // ~48 KB/frame
constexpr SimDuration kFrameInterval = 40 * kMillisecond;  // 25 fps
constexpr SimDuration kPlayoutDelay = 120 * kMillisecond;  // jitter buffer

}  // namespace

int main(int argc, char** argv) {
  const double loss = argc > 1 ? std::atof(argv[1]) / 100.0 : 0.03;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 4.0;
  const auto frames = static_cast<std::uint32_t>(seconds / to_seconds(kFrameInterval));

  std::printf("video: %ux%u tiles x %zu B, 25 fps, %.1f%% loss, %u frames\n",
              kTilesX, kTilesY, kTileBytes, loss * 100, frames);

  EventLoop loop;
  LinkConfig cfg;
  cfg.bandwidth_bps = 30e6;  // ~2.4x the stream's ~12 Mb/s
  cfg.propagation_delay = 10 * kMillisecond;
  cfg.queue_limit = 1 << 14;
  cfg.seed = 99;
  DuplexChannel ch(loop, cfg);
  ch.forward.set_loss_rate(loss);
  LinkPath data(ch.forward), fb_tx(ch.reverse), fb_rx(ch.reverse);

  sessiond::Sessiond daemon(loop);
  auto session = alf::SessionConfig::builder()
                     .retransmit(alf::RetransmitPolicy::kNone)  // never wait
                     .checksum(ChecksumKind::kInternet)
                     .build();
  auto handle = daemon.open(session.value(), {&data, &fb_tx, &fb_rx});
  if (!handle.ok()) {
    std::printf("open failed: %s\n", handle.error().to_string().c_str());
    return 1;
  }
  sessiond::SessionHandle& sess = handle.value();

  alf::VideoSink sink(kTilesX, kTilesY, kTileBytes, kPlayoutDelay, kFrameInterval);
  // Regenerate inter-packet timing from the carried timestamps (§3's
  // timestamping function): the jitter estimate tells us how much playout
  // delay this path actually needs.
  alf::PlayoutClock playout(kPlayoutDelay);
  sess.set_on_adu([&](Adu&& adu) {
    const auto v = VideoRegionName::from_name(adu.name);
    playout.on_arrival(loop.now(),
                       static_cast<SimDuration>(v.timestamp_ms) * kMillisecond);
    if (auto s = sink.place(adu, loop.now()); !s.is_ok()) {
      std::printf("tile rejected: %s\n", s.to_string().c_str());
    }
  });
  sess.set_on_adu_lost([&](std::uint32_t, const AduName& name, bool known) {
    if (known) sink.mark_lost(name);
  });

  // Playout clock: render due frames every frame interval.
  std::function<void()> render_tick = [&] {
    sink.render_due(loop.now());
    if (sink.frames_rendered() < frames) {
      loop.schedule_after(kFrameInterval, render_tick);
    }
  };
  loop.schedule_after(kPlayoutDelay, render_tick);

  // Source: emit one frame of tiles every interval, in real time.
  Rng content(1);
  std::uint32_t frame_no = 0;
  ByteBuffer tile(kTileBytes);
  std::function<void()> capture_tick = [&] {
    for (std::uint16_t y = 0; y < kTilesY; ++y) {
      for (std::uint16_t x = 0; x < kTilesX; ++x) {
        content.fill(tile.span());
        const VideoRegionName name{
            frame_no, x, y,
            static_cast<std::uint32_t>(frame_no * to_seconds(kFrameInterval) * 1000)};
        // Real-time source: if the transport cannot take it, the frame is
        // simply degraded — never block the capture pipeline.
        (void)sess.send_adu(name.to_name(), tile.span());
      }
    }
    if (++frame_no < frames) {
      loop.schedule_after(kFrameInterval, capture_tick);
    } else {
      sess.finish();
    }
  };
  capture_tick();

  loop.run();  // the playout ticks render exactly `frames` frames

  const auto& st = sink.stats();
  std::printf("\nrendered %llu frames: %llu complete, %llu concealed "
              "(%.1f%% tiles concealed)\n",
              static_cast<unsigned long long>(st.frames_rendered),
              static_cast<unsigned long long>(st.frames_complete),
              static_cast<unsigned long long>(st.frames_concealed),
              100.0 * static_cast<double>(st.tiles_concealed) /
                  (static_cast<double>(st.frames_rendered) * kTilesX * kTilesY));
  std::printf("tiles: %llu placed, %llu late, %llu reported lost\n",
              static_cast<unsigned long long>(st.tiles_placed),
              static_cast<unsigned long long>(st.tiles_late),
              static_cast<unsigned long long>(st.tiles_lost));
  std::printf("transport: %llu fragments sent, %llu ADU retransmissions "
              "(policy kNone: must be 0)\n",
              static_cast<unsigned long long>(
                  sess.sender().stats().fragments_sent),
              static_cast<unsigned long long>(
                  sess.sender().stats().adus_retransmitted));
  std::printf("measured interarrival jitter: %s -> adaptive playout delay "
              "would be %s (configured %s)\n",
              format_sim_time(playout.estimator().jitter()).c_str(),
              format_sim_time(playout.current_delay()).c_str(),
              format_sim_time(kPlayoutDelay).c_str());
  return 0;
}
