// file_transfer — the paper's §5 file-transfer scenario, both ways.
//
// Transfers a 1 MB "file" across a lossy link twice:
//
//   1. TCP-like stream transport: bytes trickle to the application
//      strictly in order; a single loss stalls delivery until recovery.
//   2. ALF transport with FileRegion naming: the sender labels every ADU
//      with its byte range IN THE RECEIVER'S FILE, so the FileSink can
//      "copy the data into the file at the correct location, even though
//      intervening ADUs are missing" (§5).
//
// The example prints a delivery-progress timeline for both and verifies
// both receivers reconstructed the identical file.
//
//   $ ./file_transfer [loss_percent]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "alf/file_sink.h"
#include "netsim/net_path.h"
#include "sessiond/sessiond.h"
#include "transport/stream_receiver.h"
#include "transport/stream_sender.h"
#include "util/rng.h"

using namespace ngp;

namespace {

constexpr std::size_t kFileSize = 1 << 20;
constexpr std::size_t kAduSize = 8192;

ByteBuffer make_file() {
  ByteBuffer f(kFileSize);
  Rng rng(0xF11E);
  rng.fill(f.span());
  return f;
}

LinkConfig make_link(std::uint64_t seed) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 50e6;
  cfg.propagation_delay = 5 * kMillisecond;
  cfg.queue_limit = 1 << 16;
  cfg.seed = seed;
  return cfg;
}

void print_progress(const char* who, EventLoop& loop, std::size_t bytes,
                    std::size_t total) {
  std::printf("  [%s] t=%-9s %3zu%% (%zu bytes)\n", who,
              format_sim_time(loop.now()).c_str(), bytes * 100 / total, bytes);
}

void run_stream(const ByteBuffer& file, double loss) {
  std::printf("\n--- TCP-like stream transport (in-order delivery) ---\n");
  EventLoop loop;
  DuplexChannel ch(loop, make_link(1), make_link(2));
  ch.forward.set_loss_rate(loss);
  LinkPath data(ch.forward), ack_tx(ch.reverse), ack_rx(ch.reverse);

  StreamSender sender(loop, data, ack_rx);
  StreamReceiver receiver(loop, data, ack_tx);

  ByteBuffer out(kFileSize);
  std::size_t written = 0, next_report = kFileSize / 4;
  receiver.set_on_data([&](ConstBytes b) {
    std::memcpy(out.data() + written, b.data(), b.size());
    written += b.size();
    if (written >= next_report) {
      print_progress("stream", loop, written, kFileSize);
      next_report += kFileSize / 4;
    }
  });

  std::size_t offset = 0;
  std::function<void()> feed = [&] {
    offset += sender.send(file.subspan(offset, 128 * 1024));
    if (offset < kFileSize) {
      loop.schedule_after(kMillisecond, feed);
    } else {
      sender.close();
    }
  };
  feed();
  loop.run();

  std::printf("  done at t=%s; retransmits=%llu; intact=%s\n",
              format_sim_time(loop.now()).c_str(),
              static_cast<unsigned long long>(sender.stats().retransmits),
              out == file ? "yes" : "NO");
}

void run_alf(const ByteBuffer& file, double loss) {
  std::printf("\n--- ALF transport (out-of-order FileRegion ADUs) ---\n");
  EventLoop loop;
  DuplexChannel ch(loop, make_link(3), make_link(4));
  ch.forward.set_loss_rate(loss);
  LinkPath data(ch.forward), fb_tx(ch.reverse), fb_rx(ch.reverse);

  sessiond::Sessiond daemon(loop);
  auto session = alf::SessionConfig::builder()
                     .nack_delay(15 * kMillisecond)
                     .build();
  auto handle = daemon.open(session.value(), {&data, &fb_tx, &fb_rx});
  if (!handle.ok()) {
    std::printf("  open failed: %s\n", handle.error().to_string().c_str());
    return;
  }
  sessiond::SessionHandle& s = handle.value();

  alf::FileSink sink(kFileSize);
  std::size_t next_report = kFileSize / 4;
  s.set_on_adu([&](Adu&& adu) {
    if (auto s = sink.place(adu); !s.is_ok()) {
      std::printf("  place failed: %s\n", s.to_string().c_str());
    }
    if (sink.bytes_placed() >= next_report) {
      print_progress("alf", loop, sink.bytes_placed(), kFileSize);
      next_report += kFileSize / 4;
    }
  });
  s.set_on_adu_lost([&](std::uint32_t, const AduName& name, bool known) {
    if (known) sink.mark_lost(name);
  });

  // The sender names each ADU with its receiver-file byte range. With raw
  // transfer syntax the receiver offset equals the source offset; with a
  // size-changing syntax the sender would compute the post-conversion
  // placement here (§5's architecture of presentation conversion).
  for (std::size_t off = 0; off < kFileSize; off += kAduSize) {
    const std::size_t len = std::min(kAduSize, kFileSize - off);
    auto name = FileRegionName{off, len}.to_name();
    if (!s.send_adu(name, file.span().subspan(off, len)).ok()) {
      std::printf("send_adu failed\n");
      return;
    }
  }
  s.finish();
  loop.run();

  std::printf("  done at t=%s; ADU rtx=%llu; out-of-order placements=%llu; "
              "holes=%zu; intact=%s\n",
              format_sim_time(loop.now()).c_str(),
              static_cast<unsigned long long>(
                  s.sender().stats().adus_retransmitted),
              static_cast<unsigned long long>(sink.out_of_order_placements()),
              sink.holes().size(),
              ByteBuffer(sink.contents()) == file ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  const double loss = argc > 1 ? std::atof(argv[1]) / 100.0 : 0.02;
  std::printf("file transfer: %zu bytes, %.1f%% packet loss\n", kFileSize,
              loss * 100);
  const ByteBuffer file = make_file();
  run_stream(file, loss);
  run_alf(file, loss);
  return 0;
}
